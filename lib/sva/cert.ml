module N = Fmc_netlist.Netlist
module Circuit = Fmc_cpu.Circuit
module Jsonx = Fmc_obs.Jsonx
module Engine = Fmc.Engine
module Golden = Fmc.Golden
module Precharac = Fmc.Precharac
module Lifetime = Fmc.Lifetime
module Programs = Fmc_isa.Programs

type group_cert = {
  group : string;
  bits : int;
  min_cycles_to_observable : int option;
  observable_until_te : int option;
  stuck_bits : int;
  max_lifetime : float;
}

type t = {
  benchmark : string;
  target_cycle : int;
  halt_cycle : int;
  nodes : int;
  dff_count : int;
  gate_count : int;
  workload_cycles : int;
  input_bits : int;
  constant_input_bits : int;
  stuck_dff_bits : int;
  constant_gates : int;
  iterations : int;
  groups : group_cert list;
}

let build engine =
  let circuit = Engine.circuit engine in
  let net = circuit.Circuit.net in
  let golden = Engine.golden engine in
  let program = Engine.program engine in
  let precharac = Engine.precharac engine in
  let halt = Golden.halt_cycle golden in
  let workload =
    Workload.replay circuit program ~max_cycles:program.Programs.max_cycles
  in
  let seq = Seqconst.analyze ~input_value:(Workload.input_value workload) net in
  let roots =
    Circuit.responding_signals circuit @ List.map snd (N.outputs net)
    |> List.sort_uniq compare
  in
  let win = Window.distances net ~roots in
  let lifetimes = Precharac.lifetimes precharac in
  let groups =
    List.map
      (fun (group, members) ->
        let stuck_bits =
          Array.fold_left
            (fun acc m -> if Seqconst.constant seq m <> None then acc + 1 else acc)
            0 members
        in
        let max_lifetime =
          Array.fold_left (fun acc m -> max acc (Lifetime.lifetime lifetimes m)) 0. members
        in
        {
          group;
          bits = Array.length members;
          min_cycles_to_observable = Window.group_distance win members;
          observable_until_te = Window.observable_until win ~halt members;
          stuck_bits;
          max_lifetime;
        })
      (N.register_groups net)
  in
  {
    benchmark = program.Programs.name;
    target_cycle = Golden.target_cycle golden;
    halt_cycle = halt;
    nodes = N.num_nodes net;
    dff_count = Array.length (N.dffs net);
    gate_count = Array.length (N.gates net);
    workload_cycles = workload.Workload.cycles;
    input_bits = workload.Workload.input_bits;
    constant_input_bits = workload.Workload.constant_bits;
    stuck_dff_bits = List.length (Seqconst.stuck_dffs net seq);
    constant_gates = List.length (Seqconst.constant_gates net seq);
    iterations = seq.Seqconst.iterations;
    groups;
  }

let opt_int = function None -> "null" | Some i -> string_of_int i

let to_json t =
  let b = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\"schema\":\"faultmc-sva-v1\",\"benchmark\":\"%s\"," (Jsonx.escape t.benchmark);
  pr "\"target_cycle\":%d,\"halt_cycle\":%d," t.target_cycle t.halt_cycle;
  pr "\"netlist\":{\"nodes\":%d,\"dffs\":%d,\"gates\":%d}," t.nodes t.dff_count t.gate_count;
  pr "\"workload\":{\"cycles\":%d,\"input_bits\":%d,\"constant_input_bits\":%d},"
    t.workload_cycles t.input_bits t.constant_input_bits;
  pr "\"constants\":{\"stuck_dff_bits\":%d,\"constant_gates\":%d,\"iterations\":%d},"
    t.stuck_dff_bits t.constant_gates t.iterations;
  pr "\"groups\":[";
  List.iteri
    (fun i g ->
      if i > 0 then pr ",";
      pr
        "{\"group\":\"%s\",\"bits\":%d,\"min_cycles_to_observable\":%s,\"observable_until_te\":%s,\"stuck_bits\":%d,\"max_lifetime\":%s}"
        (Jsonx.escape g.group) g.bits
        (opt_int g.min_cycles_to_observable)
        (opt_int g.observable_until_te)
        g.stuck_bits
        (Jsonx.number g.max_lifetime))
    t.groups;
  pr "]}";
  Buffer.contents b

let summary ppf t =
  Format.fprintf ppf "benchmark %s: target cycle %d, halt cycle %d@." t.benchmark t.target_cycle
    t.halt_cycle;
  Format.fprintf ppf "netlist: %d nodes (%d dffs, %d gates)@." t.nodes t.dff_count t.gate_count;
  Format.fprintf ppf
    "workload: %d cycles replayed, %d/%d input bits constant; %d dff bits and %d gates \
     workload-constant (%d fixpoint rounds)@."
    t.workload_cycles t.constant_input_bits t.input_bits t.stuck_dff_bits t.constant_gates
    t.iterations;
  List.iter
    (fun g ->
      match g.min_cycles_to_observable with
      | None ->
          Format.fprintf ppf
            "  %-10s %2d bits: never observable (SSF-invisible), %d stuck bits@." g.group g.bits
            g.stuck_bits
      | Some d ->
          Format.fprintf ppf
            "  %-10s %2d bits: observable in >= %d cycles (dead for te > %s), %d stuck bits, max \
             lifetime %.1f@."
            g.group g.bits d
            (match g.observable_until_te with None -> "-" | Some c -> string_of_int c)
            g.stuck_bits g.max_lifetime)
    t.groups
