(** Machine-readable masking certificates per (flip-flop group, cycle window).

    Bundles the three certificate classes of the analysis — workload
    constants ({!Seqconst} seeded by {!Workload}), structural
    observability don't-cares and temporal masking bounds ({!Window}) —
    into one artifact, emitted by [faultmc sva --json] under the
    [faultmc-sva-v1] schema documented in the README. These certificates
    are descriptive (reports, sampling diagnostics); the hot-loop pruner
    ({!Pruner}) recomputes its own joint per-sample certificates because
    the per-cell facts here do not compose soundly for multi-cell
    strikes. *)

type group_cert = {
  group : string;
  bits : int;
  min_cycles_to_observable : int option;
      (** [None] = no path to any observable in any number of cycles *)
  observable_until_te : int option;
      (** errors injected later than this cycle are provably dead by
          deadline; [None] when the group is unreachable at every cycle *)
  stuck_bits : int;  (** bits provably constant under the workload *)
  max_lifetime : float;  (** empirical (pre-characterization), not a bound *)
}

type t = {
  benchmark : string;
  target_cycle : int;
  halt_cycle : int;
  nodes : int;
  dff_count : int;
  gate_count : int;
  workload_cycles : int;
  input_bits : int;
  constant_input_bits : int;
  stuck_dff_bits : int;
  constant_gates : int;
  iterations : int;
  groups : group_cert list;
}

val build : Fmc.Engine.t -> t
val to_json : t -> string
val summary : Format.formatter -> t -> unit
