module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module Rng = Fmc_prelude.Rng
module Cycle_sim = Fmc_gatesim.Cycle_sim
module Placement = Fmc_layout.Placement
module Circuit = Fmc_cpu.Circuit
module Netsys = Fmc_cpu.Netsys
module System = Fmc_cpu.System
module Obs = Fmc_obs.Obs
module Metrics = Fmc_obs.Metrics
module Engine = Fmc.Engine
module Golden = Fmc.Golden
module Sampler = Fmc.Sampler

type stats = { mutable checked : int; mutable pruned : int; mutable certificates : int }

type inst = {
  m_checked : Metrics.counter;
  m_pruned : Metrics.counter;
  m_certs : Metrics.counter;
  m_ratio : Metrics.gauge;
}

(* The abstract state lives in a byte per node — [b_false]/[b_true] are
   definite (equal to golden), [b_unknown] is X. Bytes keep the per-sample
   state reset a plain memmove (a boxed option array pays a write barrier
   per element); the option view required by the shared
   {!Fmc_netlist.Kind.eval3} kernel is reconstructed at the evaluation
   boundary from shared constants, so no second evaluation semantics
   exists anywhere in the pruner. *)
let b_false = '\000'
let b_true = '\001'
let b_unknown = '\002'

let some_false = Some false
let some_true = Some true

let decode c = if c = b_false then some_false else if c = b_true then some_true else None

type t = {
  engine : Engine.t;
  net : N.t;
  circuit : Circuit.t;
  pindex : Placement.index;
  harness : Netsys.t;  (* private gate-level system; never touches the engine's *)
  target_cycle : int;
  pc_members : N.node array;
  sink : int array;
      (* bit 1: flip-flop D input or the memory write-enable; bit 2:
         write-port bus bit (address/data), a sink only on golden-write
         cycles. An X reaching a live sink refutes the certificate. *)
  golden : (int, Bytes.t) Hashtbl.t;  (* te -> settled fault-free node values *)
  values : Bytes.t;  (* scratch abstract state *)
  buckets : N.node array array;  (* scratch worklist, one stack per logic level *)
  bucket_len : int array;
  queued : int array;  (* epoch stamps: queued.(g) = epoch iff g enqueued *)
  mutable epoch : int;
  stats : stats;
  inst : inst option;
}

let create ?(obs = Obs.disabled) engine =
  let circuit = Engine.circuit engine in
  let net = circuit.Circuit.net in
  let inst =
    match obs.Obs.metrics with
    | None -> None
    | Some reg ->
        Some
          {
            m_checked =
              Metrics.counter reg ~help:"samples tested against masking certificates"
                "fmc_sva_samples_checked_total";
            m_pruned =
              Metrics.counter reg ~help:"samples pruned: tallied analytically as masked"
                "fmc_sva_samples_pruned_total";
            m_certs =
              Metrics.counter reg ~help:"per-sample joint masking certificates computed"
                "fmc_sva_certificates_total";
            m_ratio =
              Metrics.gauge reg ~help:"fraction of checked samples pruned"
                "fmc_sva_prune_ratio";
          }
  in
  let n = N.num_nodes net in
  let sink = Array.make n 0 in
  Array.iter (fun f -> sink.(N.dff_d net f) <- sink.(N.dff_d net f) lor 1) (N.dffs net);
  sink.(circuit.Circuit.dmem_we) <- sink.(circuit.Circuit.dmem_we) lor 1;
  Array.iter (fun b -> sink.(b) <- sink.(b) lor 2) circuit.Circuit.dmem_addr;
  Array.iter (fun b -> sink.(b) <- sink.(b) lor 2) circuit.Circuit.dmem_wdata;
  {
    engine;
    net;
    circuit;
    pindex = Placement.index (Engine.placement engine);
    harness = Netsys.create circuit (Engine.program engine);
    target_cycle = Golden.target_cycle (Engine.golden engine);
    pc_members = N.register_group net "pc";
    sink;
    golden = Hashtbl.create 97;
    values = Bytes.make n b_false;
    buckets = Array.make (N.max_level net + 1) [||];
    bucket_len = Array.make (N.max_level net + 1) 0;
    queued = Array.make n (-1);
    epoch = -1;
    stats = { checked = 0; pruned = 0; certificates = 0 };
    inst;
  }

let stats t = t.stats

let prune_ratio t =
  if t.stats.checked = 0 then 0.
  else float_of_int t.stats.pruned /. float_of_int t.stats.checked

(* Settled fault-free node values at the start of cycle [te]: restore the
   RTL golden state, mirror it (registers + data memory) into the private
   gate-level harness and settle — the same protocol as the engine's
   injection cycle, minus the strikes. *)
let golden_values t te =
  match Hashtbl.find_opt t.golden te with
  | Some v -> v
  | None ->
      let sys = Golden.restore_at (Engine.golden t.engine) te in
      let net_dmem = Netsys.dmem t.harness in
      Array.blit (System.dmem sys) 0 net_dmem 0 (Array.length net_dmem);
      Netsys.load_arch t.harness (System.state sys);
      Netsys.settle t.harness;
      let sim = Netsys.sim t.harness in
      let v =
        Bytes.init (N.num_nodes t.net) (fun n ->
            if Cycle_sim.value sim n then b_true else b_false)
      in
      Hashtbl.add t.golden te v;
      v

let any_unknown values nodes = Array.exists (fun n -> Bytes.get values n = b_unknown) nodes

exception Refuted

(* Gate-evaluation budget per certificate. Maskable samples have small
   X-fronts (the unknowns die at controlling values within a few levels);
   refutations, by contrast, can walk almost the whole fan-out cone
   before the X reaches a D input. Giving up at the budget and reporting
   "not covered" is sound (the sample is simply simulated) and
   deterministic (the walk order is a function of the struck set alone),
   and bounds the pruner's per-sample cost far below one simulation. *)
let work_budget = 160

(* Joint abstract evaluation of one injection cycle: golden values
   everywhere, X at every struck cell. Rather than sweeping the whole
   netlist, the X-front is chased through the struck cells' fan-out cone
   with a worklist ordered by logic level (sound because the
   combinational part is acyclic and [N.level] respects fan-in order) —
   for maskable samples the front dies out after a handful of gates, and
   for the rest the first X that reaches a live sink (a flip-flop D
   input, the memory write-enable, or the write-port buses on a
   golden-write cycle) refutes the certificate immediately.

   The processor's two input buses are state-dependent ([instr =
   imem[pc]], [dmem_rdata = dmem[dmem_addr]]): an unknown stored pc bit
   poisons the fetched word up front (register values never change during
   the sweep), and an unknown address bit poisons the read data, which
   re-enters the worklist. The address bus cannot itself depend on
   [dmem_rdata] (Netsys settles it first), so one widening round is a
   fixpoint; any dependence the netlist did have would re-taint through
   the ordinary gate propagation after the widening.

   Covered iff no live sink was ever tainted: every flip-flop D and the
   memory write port are then definite and equal to golden, so the
   latched state and memory provably equal the golden run at [te + 1] and
   the engine would classify the sample as exactly [Masked]. *)
let compute t ~te ~(cells : N.node array) =
  let net = t.net in
  let gold = golden_values t te in
  let values = t.values in
  Bytes.blit gold 0 values 0 (Bytes.length gold);
  t.epoch <- t.epoch + 1;
  let lo = ref (Array.length t.buckets) in
  let push g =
    (* Only combinational gates are evaluated; register/output fanouts of a
       tainted node are judged through the sink flags alone. *)
    if t.queued.(g) <> t.epoch then begin
      t.queued.(g) <- t.epoch;
      let l = N.level net g in
      let len = t.bucket_len.(l) in
      if len >= Array.length t.buckets.(l) then begin
        let grown = Array.make (max 8 (2 * len)) g in
        Array.blit t.buckets.(l) 0 grown 0 len;
        t.buckets.(l) <- grown
      end;
      t.buckets.(l).(len) <- g;
      t.bucket_len.(l) <- len + 1;
      if l < !lo then lo := l
    end
  in
  let gold_we = Bytes.get gold t.circuit.Circuit.dmem_we = b_true in
  let taint n =
    if Bytes.get values n <> b_unknown then begin
      let s = t.sink.(n) in
      if s land 1 <> 0 || (gold_we && s land 2 <> 0) then raise Refuted;
      Bytes.set values n b_unknown;
      Array.iter
        (fun f -> match N.kind net f with K.Gate _ -> push f | _ -> ())
        (N.fanouts net n)
    end
  in
  let work = ref 0 in
  let drain () =
    while !lo < Array.length t.buckets do
      if t.bucket_len.(!lo) = 0 then incr lo
      else begin
        let l = !lo in
        let g = t.buckets.(l).(t.bucket_len.(l) - 1) in
        t.bucket_len.(l) <- t.bucket_len.(l) - 1;
        if Bytes.get values g <> b_unknown then
          match N.kind net g with
          | K.Gate kind ->
              incr work;
              if !work > work_budget then raise Refuted;
              let fi = N.fanins net g in
              let vs = Array.map (fun f -> decode (Bytes.get values f)) fi in
              if K.eval3 kind vs = None then taint g
          | _ -> ()
      end
    done
  in
  let reset_buckets () = Array.fill t.bucket_len 0 (Array.length t.bucket_len) 0 in
  let struck_any = ref false in
  let covered =
    try
      Array.iter
        (fun c ->
          match N.kind net c with
          | K.Dff _ | K.Gate _ ->
              (* A struck gate carries an injected pulse: X regardless of its
                 inputs. [taint] pins it to X permanently, which subsumes the
                 forced-output treatment. Input/const strikes are ignored,
                 matching the engine's strike partition. *)
              struck_any := true;
              taint c
          | K.Input | K.Const _ -> ())
        cells;
      if !struck_any then begin
        (* The fetched word indexes imem by the pc register group's stored
           bits (Netsys.settle), so any struck pc bit poisons instr. *)
        if any_unknown values t.pc_members then Array.iter taint t.circuit.Circuit.instr;
        drain ();
        if any_unknown values t.circuit.Circuit.dmem_addr then begin
          (* New epoch so gates settled definite in the first round are
             re-enqueued when the widened read data re-taints them. *)
          t.epoch <- t.epoch + 1;
          Array.iter taint t.circuit.Circuit.dmem_rdata;
          drain ()
        end
      end;
      true
    with Refuted -> false
  in
  reset_buckets ();
  covered

let covered t (sample : Sampler.sample) =
  let te = t.target_cycle - sample.Sampler.t in
  if te < 1 then true (* the engine short-circuits to Masked *)
  else begin
    let cells =
      Placement.within_indexed t.pindex ~center:sample.Sampler.center
        ~radius:sample.Sampler.radius
    in
    let v = compute t ~te ~cells in
    t.stats.certificates <- t.stats.certificates + 1;
    (match t.inst with Some i -> Metrics.inc i.m_certs | None -> ());
    v
  end

let check t sample =
  t.stats.checked <- t.stats.checked + 1;
  (match t.inst with Some i -> Metrics.inc i.m_checked | None -> ());
  let v = covered t sample in
  if v then begin
    t.stats.pruned <- t.stats.pruned + 1;
    match t.inst with Some i -> Metrics.inc i.m_pruned | None -> ()
  end;
  (match t.inst with Some i -> Metrics.set i.m_ratio (prune_ratio t) | None -> ());
  v

let self_check ?(points = 50) ?(seed = 7) t =
  let dffs = N.dffs t.net in
  let draw_rng = Rng.create seed in
  let sim_rng = Rng.create (seed + 1) in
  let checked = ref 0 in
  let tried = ref 0 in
  let violations = ref [] in
  let max_tries = points * 200 in
  while !checked < points && !tried < max_tries do
    incr tried;
    let f = Rng.choose draw_rng dffs in
    let te = Rng.int_in draw_rng 1 (max 1 t.target_cycle) in
    let sample =
      {
        Sampler.t = t.target_cycle - te;
        center = f;
        radius = 0.;
        width = 80.;
        time_frac = 0.3;
        weight = 1.;
        stratum = Sampler.All;
      }
    in
    if covered t sample then begin
      incr checked;
      let r = Engine.run_sample t.engine sim_rng sample in
      if r.Engine.outcome <> Engine.Masked then violations := (f, te) :: !violations
    end
  done;
  (!checked, List.rev !violations)
