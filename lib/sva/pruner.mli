(** Analytical hot-loop pruner: sound per-sample masking certificates.

    [check t sample] decides whether the engine is {e guaranteed} to
    classify [sample] as exactly [Masked] — the outcome, success flag,
    flips and every field {!Fmc.Ssf.Tally.record} reads are all forced —
    so the Monte Carlo loop can skip the gate-level simulation and tally
    the sample analytically with its original weight, keeping the report
    byte-identical to the unpruned run.

    The certificate is a joint three-valued propagation of the whole
    struck-cell set at the sample's injection cycle (per-cell certificates
    do {e not} compose: two unknowns can reconverge and still cancel, or
    not). Definiteness of every flip-flop D input and of the memory write
    port, under golden seeds with X at struck cells, implies the latched
    state and memory equal the golden run — the soundness argument is
    spelled out in DESIGN.md §13.

    The propagation chases the X-front through the struck cells' fan-out
    cone with a logic-level-ordered worklist, refutes at the first X that
    reaches a live sink, and gives up (soundly reporting "not covered")
    at a fixed gate-evaluation budget — so the per-sample cost is bounded
    far below one simulation. Golden settled-value snapshots are memoized
    per injection cycle. *)

type t

type stats = { mutable checked : int; mutable pruned : int; mutable certificates : int }

val create : ?obs:Fmc_obs.Obs.t -> Fmc.Engine.t -> t
(** Builds a private gate-level harness (the engine's own simulator state
    is never touched). When [obs] carries a metrics registry, registers
    [fmc_sva_samples_checked_total], [fmc_sva_samples_pruned_total],
    [fmc_sva_certificates_total] and the [fmc_sva_prune_ratio] gauge. *)

val check : t -> Fmc.Sampler.sample -> bool
(** True iff the sample is provably [Masked]; updates stats and metrics.
    Suitable as [Ssf.estimate]'s / [Campaign.run]'s [?prune] argument. *)

val covered : t -> Fmc.Sampler.sample -> bool
(** Same verdict as {!check} but without touching the checked/pruned
    stats (certificate-cache metrics still fire). *)

val stats : t -> stats
val prune_ratio : t -> float

val self_check :
  ?points:int -> ?seed:int -> t -> int * (Fmc_netlist.Netlist.node * int) list
(** Soundness cross-check: draw random single-flip-flop (cell, cycle)
    points, keep the ones the pruner claims covered, run the full engine
    on each and report [(claimed, violations)] where every violation is a
    [(dff, te)] the engine did {e not} classify as [Masked] (must be
    empty). Wired behind [faultmc sva --check] and the test suite. *)
