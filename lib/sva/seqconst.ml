module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind

type result = { values : Absint.v array; iterations : int }

let analyze ?(input_value = fun _ -> None) net =
  let n = N.num_nodes net in
  let values = Array.make n None in
  Array.iter
    (fun c -> match N.kind net c with K.Const b -> values.(c) <- Some b | _ -> ())
    (N.consts net);
  Array.iter (fun i -> values.(i) <- input_value i) (N.inputs net);
  Array.iter (fun d -> values.(d) <- Some (N.dff_init net d)) (N.dffs net);
  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    incr iterations;
    changed := false;
    Absint.comb_pass net values;
    Array.iter
      (fun d ->
        match (values.(d), values.(N.dff_d net d)) with
        | Some cur, Some next when cur = next -> ()
        | Some _, _ ->
            (* The register can leave its current invariant: widen to X. *)
            values.(d) <- None;
            changed := true
        | None, _ -> ())
      (N.dffs net)
  done;
  { values; iterations = !iterations }

let constant r node = r.values.(node)

let stuck_dffs net r =
  Array.to_list (N.dffs net) |> List.filter (fun d -> r.values.(d) <> None)

let constant_gates net r =
  Array.to_list (N.gates net) |> List.filter (fun g -> r.values.(g) <> None)
