(** Sequential constant propagation (workload-constant logic).

    Computes, per node, a value the node provably holds at {e every}
    reachable cycle: registers start at their reset value and are widened
    to unknown as soon as their D input can disagree; gates follow by
    three-valued evaluation ({!Absint.comb_pass}). The fixpoint is a
    decreasing iteration on a finite lattice (each round either widens at
    least one flip-flop or terminates), so it converges in at most
    [#dffs + 1] rounds.

    With the default [input_value] (everything unknown) the result is the
    workload-independent reset-constant set. Seeding [input_value] from a
    benchmark replay ({!Workload.input_constants}) yields the
    workload-constant set of the paper's "constant under the benchmark"
    certificate class. *)

type result = { values : Absint.v array; iterations : int }

val analyze :
  ?input_value:(Fmc_netlist.Netlist.node -> Absint.v) -> Fmc_netlist.Netlist.t -> result
(** [input_value] gives the assumed invariant of each primary input
    ([None] = unconstrained). The result is sound only under that
    assumption. *)

val constant : result -> Fmc_netlist.Netlist.node -> Absint.v

val stuck_dffs : Fmc_netlist.Netlist.t -> result -> Fmc_netlist.Netlist.node list
(** Flip-flops provably stuck at their reset value for the whole run. *)

val constant_gates : Fmc_netlist.Netlist.t -> result -> Fmc_netlist.Netlist.node list
(** Gates whose output is provably constant at every cycle. *)
