module N = Fmc_netlist.Netlist
module Cone = Fmc_netlist.Cone

type t = (N.node, int) Hashtbl.t

let distances net ~roots =
  let dist : t = Hashtbl.create 97 in
  let queue = Queue.create () in
  let visit f d =
    if not (Hashtbl.mem dist f) then begin
      Hashtbl.replace dist f d;
      Queue.add f queue
    end
  in
  Array.iter (fun f -> visit f 0) (Cone.fanin net ~roots).Cone.registers;
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    let d = Hashtbl.find dist g in
    let preds = (Cone.fanin net ~roots:[ N.dff_d net g ]).Cone.registers in
    Array.iter (fun f -> visit f (d + 1)) preds
  done;
  dist

let distance t f = Hashtbl.find_opt t f

let group_distance t members =
  Array.fold_left
    (fun acc f ->
      match (acc, Hashtbl.find_opt t f) with
      | None, d -> d
      | Some a, Some d -> Some (min a d)
      | Some a, None -> Some a)
    None members

let observable_until t ~halt members =
  match group_distance t members with None -> None | Some d -> Some (halt - d)
