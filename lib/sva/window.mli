(** Cycle-aware structural observability (temporal masking bounds).

    Generalizes the cone-closure fixpoint of [Fmc_analysis.Security] with a
    distance metric: [distance f] is the minimum number of clock cycles an
    error sitting in flip-flop [f] needs before it can first influence any
    root node (0 = [f] feeds a root's combinational cone directly,
    [None] = no path in any number of cycles, i.e. the register is
    SSF-invisible). Computed as a multi-source BFS over the register
    dependency graph: edge [f -> g] when [f] is in the fan-in cone frontier
    of [g]'s D input.

    The temporal certificate follows: an error injected at cycle [te] in a
    group with distance [d] cannot reach any observable before cycle
    [te + d], so for [te > halt - d] it is provably dead by deadline. These
    bounds feed the certificate artifact and the [sva-masking] analysis
    pass; they are {e not} used by the hot-loop pruner, which needs the
    stronger "outcome is exactly Masked" guarantee (see DESIGN.md §13). *)

type t

val distances : Fmc_netlist.Netlist.t -> roots:Fmc_netlist.Netlist.node list -> t

val distance : t -> Fmc_netlist.Netlist.node -> int option
(** Minimum cycles for an error in this flip-flop to reach a root;
    [None] when unreachable. *)

val group_distance : t -> Fmc_netlist.Netlist.node array -> int option
(** Minimum over the member bits; [None] when no bit can ever reach a
    root. *)

val observable_until : t -> halt:int -> Fmc_netlist.Netlist.node array -> int option
(** Latest injection cycle [te] at which an error in this group can still
    reach a root before the run halts; [None] when the group is
    unreachable (masked at every cycle). *)
