module N = Fmc_netlist.Netlist
module Circuit = Fmc_cpu.Circuit
module Netsys = Fmc_cpu.Netsys
module Cycle_sim = Fmc_gatesim.Cycle_sim

type t = { constants : Absint.v array; cycles : int; input_bits : int; constant_bits : int }

let replay circuit program ~max_cycles =
  let net = circuit.Circuit.net in
  let sys = Netsys.create circuit program in
  let sim = Netsys.sim sys in
  let inputs = N.inputs net in
  let seen = Array.make (N.num_nodes net) None in
  let varying = Array.make (N.num_nodes net) false in
  let cycles = ref 0 in
  while !cycles < max_cycles && not (Netsys.halted sys) do
    Netsys.settle sys;
    Array.iter
      (fun i ->
        if not varying.(i) then
          let v = Cycle_sim.value sim i in
          match seen.(i) with
          | None -> seen.(i) <- Some v
          | Some w when w = v -> ()
          | Some _ ->
              varying.(i) <- true;
              seen.(i) <- None)
      inputs;
    incr cycles;
    Netsys.step sys
  done;
  let constants = Array.make (N.num_nodes net) None in
  let constant_bits = ref 0 in
  Array.iter
    (fun i ->
      if (not varying.(i)) && seen.(i) <> None then begin
        constants.(i) <- seen.(i);
        incr constant_bits
      end)
    inputs;
  {
    constants;
    cycles = !cycles;
    input_bits = Array.length inputs;
    constant_bits = !constant_bits;
  }

let input_value t node = t.constants.(node)
