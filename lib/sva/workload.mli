(** Benchmark input constancy, measured by gate-level replay.

    Runs the fault-free benchmark on a private {!Fmc_cpu.Netsys} harness
    and records, per primary-input node (instruction-word and
    data-memory-read bits), whether it holds one constant value across
    every settled cycle of the run. The result seeds
    {!Seqconst.analyze}'s [input_value] to obtain workload-constant logic:
    sound for statements about the fault-free run (and hence for the
    certificate artifact), {e not} for the hot-loop pruner, since a fault
    can steer [pc] and change the fetched instruction stream. *)

type t = {
  constants : Absint.v array;
      (** per-node: [Some v] for a primary input constant at [v] over the
          replay, [None] elsewhere *)
  cycles : int;  (** settled cycles observed before halt or cap *)
  input_bits : int;
  constant_bits : int;
}

val replay : Fmc_cpu.Circuit.t -> Fmc_isa.Programs.t -> max_cycles:int -> t

val input_value : t -> Fmc_netlist.Netlist.node -> Absint.v
(** Suitable as {!Seqconst.analyze}'s [input_value]. *)
