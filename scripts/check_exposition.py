#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document read from stdin or a file.

Stdlib-only, used by CI (obs-fleet-smoke) and handy locally:

    curl -s http://127.0.0.1:9101/metrics | python3 scripts/check_exposition.py
    python3 scripts/check_exposition.py metrics.prom

Checks the subset of the exposition format the repo emits:

  * every non-comment line is `<name>[{labels}] <float>`;
  * metric names match the Prometheus grammar;
  * every sample's base name is covered by a preceding `# TYPE` comment,
    and TYPE/HELP comments are well-formed;
  * histograms are internally consistent: `le` buckets are cumulative and
    end with `+Inf`, `_count` equals the `+Inf` bucket, `_sum`/`_count`
    are present exactly once per histogram;
  * counters are finite and non-negative; no sample value is NaN;
  * no metric name is emitted under two different TYPEs.

Exits 0 and prints a one-line summary on success; prints every violation
and exits 1 otherwise.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")

HISTO_SUFFIXES = ("_bucket", "_sum", "_count")


def base_name(name):
    """Histogram samples share a family: strip the series suffix."""
    for suffix in HISTO_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(raw):
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def main():
    if len(sys.argv) > 2:
        print(f"usage: {sys.argv[0]} [metrics.prom]", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        text = open(sys.argv[1], encoding="utf-8").read()
    else:
        text = sys.stdin.read()

    errors = []
    types = {}  # base metric name -> declared TYPE
    helps = set()
    samples = []  # (lineno, name, labels-dict, value)

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    errors.append(f"line {lineno}: malformed TYPE comment: {line}")
                    continue
                name = parts[2]
                if not NAME_RE.match(name):
                    errors.append(f"line {lineno}: bad metric name in TYPE: {name}")
                elif name in types and types[name] != parts[3]:
                    errors.append(
                        f"line {lineno}: {name} re-declared as {parts[3]} "
                        f"(was {types[name]})"
                    )
                else:
                    types[name] = parts[3]
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    errors.append(f"line {lineno}: malformed HELP comment: {line}")
                else:
                    helps.add(parts[2])
            # other comments are legal free text
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample line: {line}")
            continue
        name, labelblob, raw = m.groups()
        labels = {}
        if labelblob:
            body = labelblob[1:-1].strip()
            if body:
                for pair in body.rstrip(",").split(","):
                    lm = LABEL_RE.match(pair.strip())
                    if not lm:
                        errors.append(f"line {lineno}: bad label pair {pair!r}")
                    else:
                        labels[lm.group(1)] = lm.group(2)
        value = parse_value(raw)
        if value is None or math.isnan(value):
            errors.append(f"line {lineno}: bad sample value {raw!r} for {name}")
            continue
        family = base_name(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            errors.append(f"line {lineno}: sample {name} has no preceding # TYPE")
            continue
        if declared == "counter" and value < 0:
            errors.append(f"line {lineno}: counter {name} is negative ({value})")
        samples.append((lineno, name, labels, value))

    # Histogram consistency, one family at a time.
    for family, kind in sorted(types.items()):
        if kind != "histogram":
            continue
        buckets = []
        sums = []
        counts = []
        for lineno, name, labels, value in samples:
            if name == family + "_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: {name} missing le label")
                    continue
                parsed = parse_value(le)
                if parsed is None:
                    errors.append(f"line {lineno}: {name} has bad le={le!r}")
                    continue
                buckets.append((lineno, parsed, value))
            elif name == family + "_sum":
                sums.append(value)
            elif name == family + "_count":
                counts.append(value)
        if not buckets:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        if len(sums) != 1 or len(counts) != 1:
            errors.append(
                f"histogram {family}: expected exactly one _sum and one _count, "
                f"got {len(sums)}/{len(counts)}"
            )
            continue
        if buckets[-1][1] != math.inf:
            errors.append(f"histogram {family}: last bucket is not le=\"+Inf\"")
        prev_le, prev_v = -math.inf, -math.inf
        for lineno, le, v in buckets:
            if le <= prev_le:
                errors.append(
                    f"line {lineno}: histogram {family} le buckets not increasing"
                )
            if v < prev_v:
                errors.append(
                    f"line {lineno}: histogram {family} buckets not cumulative"
                )
            prev_le, prev_v = le, v
        if buckets[-1][2] != counts[0]:
            errors.append(
                f"histogram {family}: +Inf bucket {buckets[-1][2]} != "
                f"_count {counts[0]}"
            )

    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"FAIL: {len(errors)} exposition violation(s)", file=sys.stderr)
        return 1
    histos = sum(1 for k in types.values() if k == "histogram")
    print(
        f"exposition OK: {len(samples)} samples, {len(types)} metric families "
        f"({histos} histograms), {len(helps)} HELP comments"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
