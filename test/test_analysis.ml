(* Tests for the static-analysis pass framework: seeded-defect tests (each
   lint must fire on a netlist built with exactly that defect), clean-
   benchmark tests (the CPU and crypto netlists carry no ERROR-level
   findings), the coverage-certificate cross-check against iterated
   [Cone.fanin]/[Cone.fanout] ground truth, and the TMR verifier against
   both the genuine [Tmr.protect] output and deliberately corrupted
   triplications. *)

open Fmc_netlist
open Fmc_analysis
module K = Kind
module B = Builder
module N = Netlist
module D = Diagnostic

let run_pass pass net = Pass.run pass (Pass.target ~name:"test" net)

let by_pass name diags = List.filter (fun d -> d.D.pass = name) diags

let severity = Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (D.severity_to_string s))
    ( = )

(* ------------------------------------------------------------------ *)
(* Diagnostic basics *)

let test_severity_order () =
  Alcotest.(check bool) "info < warn" true (D.severity_compare D.Info D.Warning < 0);
  Alcotest.(check bool) "warn < error" true (D.severity_compare D.Warning D.Error < 0);
  Alcotest.(check (option severity)) "of_string warn" (Some D.Warning) (D.severity_of_string "WARN");
  Alcotest.(check (option severity)) "of_string warning" (Some D.Warning)
    (D.severity_of_string "warning");
  Alcotest.(check (option severity)) "of_string junk" None (D.severity_of_string "fatal");
  let d = D.make ~pass:"p" ~severity:D.Error ~nodes:[ 1; 2 ] ~groups:[ "g" ] "boom" in
  Alcotest.(check (option severity)) "max severity" (Some D.Error) (D.max_severity [ d ]);
  Alcotest.(check int) "exit on error" 1 (Reporter.exit_code ~fail_on:D.Error [ d ]);
  Alcotest.(check int) "no exit below threshold" 0
    (Reporter.exit_code ~fail_on:D.Error [ D.make ~pass:"p" ~severity:D.Warning "meh" ]);
  let json = D.to_json d in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json severity" true (contains "\"severity\":\"error\"");
  Alcotest.(check bool) "json nodes" true (contains "\"nodes\":[1,2]")

let test_registry () =
  Alcotest.(check int) "ten passes" 10 (List.length Registry.all);
  Alcotest.(check bool) "find dead-gate" true (Registry.find "dead-gate" <> None);
  Alcotest.(check bool) "find sva-const" true (Registry.find "sva-const" <> None);
  Alcotest.(check bool) "find sva-masking" true (Registry.find "sva-masking" <> None);
  (match Registry.select [ "tmr-verifier"; "dead-gate" ] with
  | Ok [ a; b ] ->
      Alcotest.(check string) "order kept" "tmr-verifier" a.Pass.name;
      Alcotest.(check string) "second" "dead-gate" b.Pass.name
  | _ -> Alcotest.fail "selection failed");
  match Registry.select [ "bogus" ] with
  | Error msg -> Alcotest.(check bool) "names listed" true (String.length msg > 20)
  | Ok _ -> Alcotest.fail "bogus pass accepted"

(* ------------------------------------------------------------------ *)
(* Seeded structural defects *)

(* Base circuit every defect builder starts from: i -> q -> output. *)
let with_base f =
  let b = B.create () in
  let i = B.add_input b ~name:"i" in
  let q = B.add_dff b ~group:"q" ~bit:0 ~init:false in
  B.connect_dff b q ~d:i;
  B.set_output b ~name:"o" q;
  f b i q

let test_dead_gate () =
  let net, dead =
    with_base (fun b i _ ->
        let dead = B.add_gate b K.Not [| i |] in
        (N.of_builder b, dead))
  in
  let diags = by_pass "dead-gate" (run_pass Structural.dead_gate net) in
  Alcotest.(check int) "one dead gate" 1 (List.length diags);
  Alcotest.(check (list int)) "provenance" [ dead ] (List.hd diags).D.nodes;
  (* The base circuit alone is clean. *)
  let clean = with_base (fun b _ _ -> N.of_builder b) in
  Alcotest.(check int) "clean base" 0 (List.length (run_pass Structural.dead_gate clean))

let test_const_gate () =
  let net, const_g, ident_g =
    with_base (fun b i _ ->
        let one = B.add_const b true in
        let zero = B.add_const b false in
        let const_g = B.add_gate b K.And [| one; zero |] in
        let ident_g = B.add_gate b K.Xor [| i; zero |] in
        let sink = B.add_gate b K.Or [| const_g; ident_g |] in
        B.set_output b ~name:"sink" sink;
        (N.of_builder b, const_g, ident_g))
  in
  let diags = run_pass Structural.const_gate net in
  let consts = List.filter (fun d -> d.D.severity = D.Warning) diags in
  let idents = List.filter (fun d -> d.D.severity = D.Info) diags in
  Alcotest.(check (list int)) "constant gate" [ const_g ] (List.hd consts).D.nodes;
  Alcotest.(check bool) "identity fold found" true
    (List.exists (fun d -> List.mem ident_g d.D.nodes) idents)

let test_floating_input () =
  let net, floating =
    with_base (fun b _ _ ->
        let floating = B.add_input b ~name:"nc" in
        (N.of_builder b, floating))
  in
  let diags = by_pass "floating-input" (run_pass Structural.floating_input net) in
  Alcotest.(check int) "one floating input" 1 (List.length diags);
  Alcotest.(check (list int)) "provenance" [ floating ] (List.hd diags).D.nodes

let test_unread_register () =
  let net =
    with_base (fun b i _ ->
        let dead_q = B.add_dff b ~group:"wo" ~bit:0 ~init:false in
        B.connect_dff b dead_q ~d:i;
        N.of_builder b)
  in
  let diags = by_pass "unread-register" (run_pass Structural.unread_register net) in
  Alcotest.(check int) "one unread group" 1 (List.length diags);
  Alcotest.(check (list string)) "group named" [ "wo" ] (List.hd diags).D.groups

let test_duplicate_gate () =
  let net, d1, d2 =
    with_base (fun b i q ->
        (* Same AND twice, once with commuted fan-ins. *)
        let d1 = B.add_gate b K.And [| i; q |] in
        let d2 = B.add_gate b K.And [| q; i |] in
        let sink = B.add_gate b K.Or [| d1; d2 |] in
        B.set_output b ~name:"sink" sink;
        (N.of_builder b, d1, d2))
  in
  let diags = by_pass "duplicate-gate" (run_pass Structural.duplicate_gate net) in
  Alcotest.(check int) "one duplicate set" 1 (List.length diags);
  Alcotest.(check (list int)) "both gates listed" [ d1; d2 ] (List.hd diags).D.nodes

let test_duplicate_gate_idempotent () =
  (* and(i,i,q) computes the same function as and(i,q): the canonical form
     drops repeated operands of idempotent gates. xor is NOT idempotent
     (xor(i,i,q) = q), so the same shape must stay un-flagged there. *)
  let net, d1, d2 =
    with_base (fun b i q ->
        let d1 = B.add_gate b K.And [| i; q |] in
        let d2 = B.add_gate b K.And [| i; i; q |] in
        let x1 = B.add_gate b K.Xor [| i; q |] in
        let x2 = B.add_gate b K.Xor [| i; i; q |] in
        let sink = B.add_gate b K.Or [| d1; d2; x1; x2 |] in
        B.set_output b ~name:"sink" sink;
        (N.of_builder b, d1, d2))
  in
  let diags = by_pass "duplicate-gate" (run_pass Structural.duplicate_gate net) in
  Alcotest.(check int) "only the and pair flagged" 1 (List.length diags);
  Alcotest.(check (list int)) "and pair listed" [ d1; d2 ] (List.hd diags).D.nodes

let test_fanout_hotspot () =
  let net, hub =
    with_base (fun b _ q ->
        (* Fan q out to 64 inverters folded into an OR tree. *)
        let stage = Array.init 64 (fun _ -> B.add_gate b K.Not [| q |]) in
        let folded = Array.fold_left (fun acc g -> B.add_gate b K.Or [| acc; g |]) stage.(0) stage in
        B.set_output b ~name:"tree" folded;
        (N.of_builder b, q))
  in
  Alcotest.(check bool) "threshold sane" true (Structural.hotspot_threshold net >= 32);
  let diags = by_pass "fanout-hotspot" (run_pass Structural.fanout_hotspot net) in
  Alcotest.(check bool) "hub flagged" true
    (List.exists (fun d -> d.D.nodes = [ hub ]) diags);
  let clean = with_base (fun b _ _ -> N.of_builder b) in
  Alcotest.(check int) "clean base" 0 (List.length (run_pass Structural.fanout_hotspot clean))

(* ------------------------------------------------------------------ *)
(* Coverage certificate *)

(* Two register chains: [vis] feeds the responding gate, [invis] only feeds
   a separate output and is fed by its own input — no path in either
   direction to the responding gate. *)
let split_net () =
  let b = B.create () in
  let i = B.add_input b ~name:"i" in
  let j = B.add_input b ~name:"j" in
  let vis = B.add_dff b ~group:"vis" ~bit:0 ~init:false in
  let invis = Array.init 2 (fun bit -> B.add_dff b ~group:"invis" ~bit ~init:false) in
  let responding = B.add_gate b K.And [| vis; i |] in
  B.connect_dff b vis ~d:responding;
  let other = B.add_gate b K.Xor [| invis.(0); j |] in
  B.connect_dff b invis.(0) ~d:other;
  B.connect_dff b invis.(1) ~d:invis.(0);
  B.set_output b ~name:"alarm" responding;
  B.set_output b ~name:"other" invis.(1);
  (N.of_builder b, responding)

let test_coverage_split () =
  let net, responding = split_net () in
  let t = Pass.target ~name:"split" ~responding:[ responding ] net in
  let covs = Security.coverage t in
  let find g = List.find (fun c -> c.Security.group = g) covs in
  Alcotest.(check int) "vis total" 1 (find "vis").Security.total;
  Alcotest.(check int) "vis all visible" 0 (find "vis").Security.invisible;
  Alcotest.(check int) "invis total" 2 (find "invis").Security.total;
  Alcotest.(check int) "invis all invisible" 2 (find "invis").Security.invisible;
  (* The certificate pass reports the same numbers in its data fields. *)
  let diags = by_pass "coverage-certificate" (Pass.run Security.coverage_certificate t) in
  let for_group g =
    List.find (fun d -> d.D.groups = [ g ]) diags
  in
  Alcotest.(check (option (float 0.))) "invis data" (Some 2.)
    (List.assoc_opt "invisible" (for_group "invis").D.data);
  Alcotest.(check (option (float 0.))) "vis data" (Some 0.)
    (List.assoc_opt "invisible" (for_group "vis").D.data)

(* Ground truth via iterated single-cycle [Cone.fanin]/[Cone.fanout] calls:
   an independent re-derivation of the sequential closure the certificate
   computes internally. *)
let visible_ground_truth net ~roots =
  let module Tbl = Hashtbl in
  let seen = Tbl.create 64 in
  let rec backward roots =
    let cone = Cone.fanin net ~roots in
    let fresh =
      Array.to_list cone.Cone.registers |> List.filter (fun r -> not (Tbl.mem seen (`B r)))
    in
    if fresh <> [] then begin
      List.iter (fun r -> Tbl.replace seen (`B r) ()) fresh;
      backward (List.map (N.dff_d net) fresh)
    end
  in
  let rec forward roots =
    let cone = Cone.fanout net ~roots in
    let fresh =
      Array.to_list cone.Cone.registers |> List.filter (fun r -> not (Tbl.mem seen (`F r)))
    in
    if fresh <> [] then begin
      List.iter (fun r -> Tbl.replace seen (`F r) ()) fresh;
      forward fresh
    end
  in
  backward roots;
  forward roots;
  Array.to_list (N.dffs net)
  |> List.filter (fun r -> Tbl.mem seen (`B r) || Tbl.mem seen (`F r))

let check_coverage_against_cones name (t : Pass.target) =
  let truth = visible_ground_truth t.Pass.net ~roots:(Pass.roots t) in
  let vis = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace vis r ()) truth;
  List.iter
    (fun c ->
      let members = N.register_group t.Pass.net c.Security.group in
      let expect =
        Array.fold_left (fun acc m -> if Hashtbl.mem vis m then acc else acc + 1) 0 members
      in
      Alcotest.(check int)
        (Printf.sprintf "%s group %s invisible count" name c.Security.group)
        expect c.Security.invisible)
    (Security.coverage t)

let cpu_target () =
  let circuit = Fmc_cpu.Circuit.build () in
  Pass.target ~name:"cpu"
    ~responding:(Fmc_cpu.Circuit.responding_signals circuit)
    circuit.Fmc_cpu.Circuit.net

let crypto_target () =
  let core = Fmc_crypto.Core_circuit.build () in
  Pass.target ~name:"crypto" core.Fmc_crypto.Core_circuit.net

let test_coverage_cross_check () =
  check_coverage_against_cones "split"
    (let net, responding = split_net () in
     Pass.target ~name:"split" ~responding:[ responding ] net);
  check_coverage_against_cones "cpu" (cpu_target ());
  check_coverage_against_cones "crypto" (crypto_target ())

(* ------------------------------------------------------------------ *)
(* Clean benchmarks *)

let test_benchmarks_error_free () =
  List.iter
    (fun t ->
      let diags = Reporter.run Registry.all t in
      Alcotest.(check int)
        (Printf.sprintf "%s has no ERROR findings" t.Pass.name)
        0 (D.count D.Error diags);
      Alcotest.(check bool)
        (Printf.sprintf "%s produces findings" t.Pass.name)
        true (diags <> []))
    [ cpu_target (); crypto_target () ]

(* ------------------------------------------------------------------ *)
(* TMR verifier *)

let counter_net () =
  let b = B.create () in
  let q = Array.init 4 (fun bit -> B.add_dff b ~group:"cnt" ~bit ~init:false) in
  let one = B.add_const b true in
  let carry = ref one in
  Array.iter
    (fun qi ->
      let s = B.add_gate b K.Xor [| qi; !carry |] in
      carry := B.add_gate b K.And [| qi; !carry |];
      B.connect_dff b qi ~d:s)
    q;
  B.set_output b ~name:"msb" q.(3);
  N.of_builder b

let tmr_errors net =
  List.filter (fun d -> d.D.severity = D.Error) (run_pass Security.tmr_verifier net)

let test_tmr_genuine_passes () =
  let net = counter_net () in
  let tmr = Tmr.protect net ~registers:(N.dffs net) in
  let diags = run_pass Security.tmr_verifier tmr in
  Alcotest.(check int) "no errors on genuine TMR" 0 (D.count D.Error diags);
  Alcotest.(check bool) "verification certificate emitted" true
    (List.exists
       (fun d -> d.D.severity = D.Info && d.D.groups = [ "cnt" ])
       diags);
  (* An unprotected netlist is silently out of scope. *)
  Alcotest.(check int) "plain netlist: nothing to verify" 0 (List.length (run_pass Security.tmr_verifier net))

(* Hand-built single-bit triplication with injectable defects. *)
let manual_tmr ?(bypass = false) ?(skew_d = false) ?(skew_init = false) ?(missing = false) () =
  let b = B.create () in
  let i = B.add_input b ~name:"i" in
  let p = B.add_dff b ~group:"x" ~bit:0 ~init:false in
  let s1 = B.add_dff b ~group:("x" ^ Tmr.voter_suffix 1) ~bit:0 ~init:false in
  if missing then begin
    B.connect_dff b p ~d:i;
    B.connect_dff b s1 ~d:i;
    B.set_output b ~name:"o" p
  end
  else begin
    let s2 = B.add_dff b ~group:("x" ^ Tmr.voter_suffix 2) ~bit:0 ~init:skew_init in
    let ab = B.add_gate b K.And [| p; s1 |] in
    let ac = B.add_gate b K.And [| p; s2 |] in
    let bc = B.add_gate b K.And [| s1; s2 |] in
    let v = B.add_gate b K.Or [| ab; ac; bc |] in
    B.connect_dff b p ~d:i;
    B.connect_dff b s1 ~d:i;
    B.connect_dff b s2 ~d:(if skew_d then B.add_gate b K.Not [| i |] else i);
    B.set_output b ~name:"o" v;
    if bypass then B.set_output b ~name:"leak" p
  end;
  N.of_builder b

let assert_tmr_error ~name ~needle net =
  let errors = tmr_errors net in
  Alcotest.(check bool) (name ^ ": error fired") true (errors <> []);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    (name ^ ": message mentions " ^ needle)
    true
    (List.exists (fun d -> contains d.D.message needle) errors)

let test_tmr_corruptions_flagged () =
  Alcotest.(check int) "well-formed manual TMR is clean" 0
    (List.length (tmr_errors (manual_tmr ())));
  assert_tmr_error ~name:"bypass" ~needle:"outside its voter" (manual_tmr ~bypass:true ());
  assert_tmr_error ~name:"skewed D" ~needle:"same D" (manual_tmr ~skew_d:true ());
  assert_tmr_error ~name:"skewed init" ~needle:"init" (manual_tmr ~skew_init:true ());
  assert_tmr_error ~name:"missing copy" ~needle:"only one shadow" (manual_tmr ~missing:true ())

let test_tmr_partial_protection () =
  (* Protect one whole group and leave another untouched: the unprotected
     group must neither confuse the pass nor be claimed as verified. *)
  let net =
    let b = B.create () in
    let i = B.add_input b ~name:"i" in
    let c0 = B.add_dff b ~group:"cnt" ~bit:0 ~init:false in
    let c1 = B.add_dff b ~group:"cnt" ~bit:1 ~init:false in
    let aux = B.add_dff b ~group:"aux" ~bit:0 ~init:false in
    B.connect_dff b c0 ~d:i;
    B.connect_dff b c1 ~d:c0;
    B.connect_dff b aux ~d:c1;
    B.set_output b ~name:"o" aux;
    N.of_builder b
  in
  let tmr = Tmr.protect net ~registers:(N.register_group net "cnt") in
  let diags = run_pass Security.tmr_verifier tmr in
  Alcotest.(check int) "no errors" 0 (D.count D.Error diags);
  Alcotest.(check bool) "cnt verified" true
    (List.exists (fun d -> d.D.severity = D.Info && d.D.groups = [ "cnt" ]) diags);
  Alcotest.(check bool) "aux not claimed" true
    (not (List.exists (fun d -> d.D.groups = [ "aux" ]) diags))

(* ------------------------------------------------------------------ *)
(* SVA certificate passes *)

let msg_contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_sva_const_pass () =
  (* A register whose D input is wired to its own reset value is provably
     stuck; the base register q follows the free input i and is not. *)
  let net =
    with_base (fun b _ _ ->
        let zero = B.add_const b false in
        let s = B.add_dff b ~group:"s" ~bit:0 ~init:false in
        B.connect_dff b s ~d:zero;
        B.set_output b ~name:"s_out" s;
        N.of_builder b)
  in
  let diags = by_pass "sva-const" (run_pass Sva_passes.sva_const net) in
  let for_group g = List.find_opt (fun d -> d.D.groups = [ g ]) diags in
  (match for_group "s" with
  | Some d ->
      Alcotest.(check (option (float 0.))) "s stuck bits" (Some 1.)
        (List.assoc_opt "stuck_bits" d.D.data)
  | None -> Alcotest.fail "stuck group s not reported");
  Alcotest.(check bool) "free-running q not claimed stuck" true (for_group "q" = None);
  (* The summary diagnostic carries the aggregate counts. *)
  let summary = List.find (fun d -> d.D.groups = []) diags in
  Alcotest.(check (option (float 0.))) "summary stuck dffs" (Some 1.)
    (List.assoc_opt "stuck_dff_bits" summary.D.data)

let test_sva_masking_pass () =
  let net, responding = split_net () in
  let t = Pass.target ~name:"split" ~responding:[ responding ] net in
  let diags = by_pass "sva-masking" (Pass.run Sva_passes.sva_masking t) in
  let for_group g = List.find (fun d -> d.D.groups = [ g ]) diags in
  Alcotest.(check bool) "invis group provably masked" true
    (msg_contains (for_group "invis").D.message "SSF-invisible");
  Alcotest.(check (option (float 0.))) "vis feeds the root combinationally" (Some 0.)
    (List.assoc_opt "min_cycles_to_observable" (for_group "vis").D.data)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "framework",
        [
          Alcotest.test_case "severity order and reporting" `Quick test_severity_order;
          Alcotest.test_case "registry lookup and selection" `Quick test_registry;
        ] );
      ( "structural",
        [
          Alcotest.test_case "dead gate" `Quick test_dead_gate;
          Alcotest.test_case "const and identity gates" `Quick test_const_gate;
          Alcotest.test_case "floating input" `Quick test_floating_input;
          Alcotest.test_case "unread register group" `Quick test_unread_register;
          Alcotest.test_case "duplicate gates" `Quick test_duplicate_gate;
          Alcotest.test_case "idempotent operand dedup" `Quick test_duplicate_gate_idempotent;
          Alcotest.test_case "fanout hotspot" `Quick test_fanout_hotspot;
        ] );
      ( "sva",
        [
          Alcotest.test_case "sequential constant pass" `Quick test_sva_const_pass;
          Alcotest.test_case "cycle-aware masking pass" `Quick test_sva_masking_pass;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "split netlist certificate" `Quick test_coverage_split;
          Alcotest.test_case "cross-check against cone ground truth" `Quick
            test_coverage_cross_check;
          Alcotest.test_case "benchmarks are ERROR-free" `Quick test_benchmarks_error_free;
        ] );
      ( "tmr",
        [
          Alcotest.test_case "genuine Tmr output verifies" `Quick test_tmr_genuine_passes;
          Alcotest.test_case "corrupted triplications flagged" `Quick test_tmr_corruptions_flagged;
          Alcotest.test_case "partial protection verifies" `Quick test_tmr_partial_protection;
        ] );
    ]
