(* Tests for Fmc_audit, the untrusted-worker defense: the seeded audit
   sampler (pure, restart-stable, zero engine-stream randomness), the
   canonical result digest, and the pass / dispute / verdict state
   machine with its epoch fencing, TTL sweep and quarantine-victim
   accounting. Pure state-machine tests — no engine, sockets or clock. *)

module Audit = Fmc_audit.Audit

let cfg ?(rate = 1.0) ?(seed = 42L) ?(ttl = 60.) () = { Audit.rate; seed; ttl_s = ttl }

(* ------------------------------------------------------------------ *)
(* sampler *)

let test_sampler_pure_and_restart_stable () =
  let seed = 7L in
  let draws rate = List.init 200 (fun shard -> Audit.selected_pure ~rate ~seed ~shard) in
  Alcotest.(check (list bool)) "same (rate, seed, shard) -> same draw" (draws 0.3) (draws 0.3);
  Alcotest.(check bool) "rate 0 selects nothing" false
    (List.exists Fun.id (draws 0.));
  Alcotest.(check bool) "rate 1 selects everything" true
    (List.for_all Fun.id (draws 1.));
  let hits = List.length (List.filter Fun.id (draws 0.3)) in
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.3 selects a plausible fraction (%d/200)" hits)
    true
    (hits > 20 && hits < 100);
  (* Different seeds disagree somewhere (else the seed is dead). *)
  let other = List.init 200 (fun shard -> Audit.selected_pure ~rate:0.3 ~seed:99L ~shard) in
  Alcotest.(check bool) "seed actually feeds the draw" true (other <> draws 0.3)

let test_sampler_matches_state_machine () =
  let c = cfg ~rate:0.3 ~seed:11L () in
  let t = Audit.create c ~nshards:100 in
  for shard = 0 to 99 do
    let selected = Audit.note_accept t ~shard ~worker:"w" ~digest:"d" in
    Alcotest.(check bool)
      (Printf.sprintf "shard %d selection agrees with selected_pure" shard)
      (Audit.selected_pure ~rate:0.3 ~seed:11L ~shard)
      selected;
    Alcotest.(check bool) "selected agrees too" selected (Audit.selected t ~shard)
  done

(* ------------------------------------------------------------------ *)
(* digest *)

let test_result_digest () =
  let tally = "samples 40\nline two\n" in
  let d = Audit.Check.result_digest ~tally ~quarantined:[] in
  Alcotest.(check string) "no quarantine: digest of the tally blob alone"
    (Fmc.Ssf.Tally.digest_hex tally) d;
  Alcotest.(check string) "deterministic" d (Audit.Check.result_digest ~tally ~quarantined:[]);
  let d' = Audit.Check.result_digest ~tally:"samples 41\nline two\n" ~quarantined:[] in
  Alcotest.(check bool) "one tally digit flips the digest" true (d <> d')

(* ------------------------------------------------------------------ *)
(* state machine *)

let test_audit_pass () =
  let t = Audit.create (cfg ()) ~nshards:2 in
  Alcotest.(check bool) "rate 1: accepted shard is due" true
    (Audit.note_accept t ~shard:0 ~worker:"alice" ~digest:"d0");
  Alcotest.(check int) "one pending" 1 (Audit.pending t);
  Alcotest.(check bool) "not finished" false (Audit.finished t);
  (* The primary executor never audits its own shard... *)
  Alcotest.(check (option int)) "alice may not self-audit" None
    (Audit.next_due t ~worker:"alice" ~allow_self:false);
  (* ...unless the fleet is down to one worker. *)
  Alcotest.(check (option int)) "allow_self lifts the bar" (Some 0)
    (Audit.next_due t ~worker:"alice" ~allow_self:true);
  Alcotest.(check (option int)) "bob is offered shard 0" (Some 0)
    (Audit.next_due t ~worker:"bob" ~allow_self:false);
  Audit.lease t ~shard:0 ~auditor:"bob" ~epoch:2 ~now:10.;
  Alcotest.(check bool) "epoch 2 routes to the audit" true (Audit.audit_epoch t ~shard:0 ~epoch:2);
  Alcotest.(check bool) "epoch 1 does not" false (Audit.audit_epoch t ~shard:0 ~epoch:1);
  (match Audit.complete t ~shard:0 ~epoch:2 ~worker:"bob" ~digest:"d0" with
  | `Pass -> ()
  | _ -> Alcotest.fail "matching digest must pass");
  Alcotest.(check int) "drained" 0 (Audit.pending t);
  Alcotest.(check bool) "finished" true (Audit.finished t)

let test_audit_dispute_verdict_against_primary () =
  let t = Audit.create (cfg ()) ~nshards:1 in
  ignore (Audit.note_accept t ~shard:0 ~worker:"alice" ~digest:"lie");
  Audit.lease t ~shard:0 ~auditor:"bob" ~epoch:2 ~now:0.;
  (match Audit.complete t ~shard:0 ~epoch:2 ~worker:"bob" ~digest:"truth" with
  | `Dispute -> ()
  | _ -> Alcotest.fail "disagreement must open a dispute");
  Alcotest.(check int) "still pending while disputed" 1 (Audit.pending t);
  (* Neither prior executor may arbitrate. *)
  Alcotest.(check (option int)) "alice may not arbitrate" None
    (Audit.next_due t ~worker:"alice" ~allow_self:false);
  Alcotest.(check (option int)) "bob may not arbitrate" None
    (Audit.next_due t ~worker:"bob" ~allow_self:false);
  Alcotest.(check (option int)) "carol arbitrates" (Some 0)
    (Audit.next_due t ~worker:"carol" ~allow_self:false);
  Audit.lease t ~shard:0 ~auditor:"carol" ~epoch:3 ~now:1.;
  (match Audit.complete t ~shard:0 ~epoch:3 ~worker:"carol" ~digest:"truth" with
  | `Verdict { Audit.vd_liars = [ "alice" ]; vd_replace = true } -> ()
  | `Verdict v ->
      Alcotest.failf "wrong verdict: liars=[%s] replace=%b"
        (String.concat ";" v.Audit.vd_liars)
        v.Audit.vd_replace
  | _ -> Alcotest.fail "quorum must yield a verdict");
  Alcotest.(check bool) "settled" true (Audit.finished t)

let test_audit_dispute_verdict_against_auditor () =
  let t = Audit.create (cfg ()) ~nshards:1 in
  ignore (Audit.note_accept t ~shard:0 ~worker:"alice" ~digest:"truth");
  Audit.lease t ~shard:0 ~auditor:"bob" ~epoch:2 ~now:0.;
  (match Audit.complete t ~shard:0 ~epoch:2 ~worker:"bob" ~digest:"lie" with
  | `Dispute -> ()
  | _ -> Alcotest.fail "dispute");
  Audit.lease t ~shard:0 ~auditor:"carol" ~epoch:3 ~now:1.;
  (match Audit.complete t ~shard:0 ~epoch:3 ~worker:"carol" ~digest:"truth" with
  | `Verdict { Audit.vd_liars = [ "bob" ]; vd_replace = false } -> ()
  | _ -> Alcotest.fail "the outvoted auditor is the liar; the primary blob stands")

let test_epoch_fencing_release_sweep () =
  let t = Audit.create (cfg ~ttl:5. ()) ~nshards:1 in
  ignore (Audit.note_accept t ~shard:0 ~worker:"alice" ~digest:"d");
  Audit.lease t ~shard:0 ~auditor:"bob" ~epoch:2 ~now:0.;
  (match Audit.complete t ~shard:0 ~epoch:9 ~worker:"bob" ~digest:"d" with
  | `Stale -> ()
  | _ -> Alcotest.fail "a fenced epoch must be stale");
  (* Heartbeats under the right epoch keep the audit lease alive. *)
  Alcotest.(check bool) "heartbeat accepted" true (Audit.heartbeat t ~shard:0 ~epoch:2 ~now:4.);
  Alcotest.(check bool) "wrong-epoch heartbeat refused" false
    (Audit.heartbeat t ~shard:0 ~epoch:9 ~now:4.);
  Alcotest.(check int) "nothing overdue yet" 0 (Audit.sweep t ~now:8.);
  Alcotest.(check int) "TTL expiry re-offers the audit" 1 (Audit.sweep t ~now:20.);
  Alcotest.(check (option int)) "due again" (Some 0)
    (Audit.next_due t ~worker:"carol" ~allow_self:false);
  (* Release after a disconnect does the same, but only under the
     leased epoch. *)
  Audit.lease t ~shard:0 ~auditor:"carol" ~epoch:3 ~now:21.;
  Audit.release t ~shard:0 ~epoch:9;
  Alcotest.(check (option int)) "wrong-epoch release is a no-op" None
    (Audit.next_due t ~worker:"dave" ~allow_self:false);
  Audit.release t ~shard:0 ~epoch:3;
  Alcotest.(check (option int)) "released back to due" (Some 0)
    (Audit.next_due t ~worker:"dave" ~allow_self:false)

let test_victims_and_invalidate () =
  let t = Audit.create (cfg ()) ~nshards:3 in
  ignore (Audit.note_accept t ~shard:0 ~worker:"alice" ~digest:"a0");
  ignore (Audit.note_accept t ~shard:1 ~worker:"alice" ~digest:"a1");
  ignore (Audit.note_accept t ~shard:2 ~worker:"bob" ~digest:"b2");
  (* Vindicate shard 0; shard 1 stays unaudited. *)
  Audit.lease t ~shard:0 ~auditor:"bob" ~epoch:2 ~now:0.;
  (match Audit.complete t ~shard:0 ~epoch:2 ~worker:"bob" ~digest:"a0" with
  | `Pass -> ()
  | _ -> Alcotest.fail "pass");
  Alcotest.(check (list int)) "only the unvindicated shard is a victim" [ 1 ]
    (Audit.victims t ~worker:"alice");
  Alcotest.(check (list int)) "bob's shard is his own" [ 2 ] (Audit.victims t ~worker:"bob");
  (* Invalidating forgets the primary; re-accepting re-draws selection. *)
  Audit.invalidate t ~shard:1;
  Alcotest.(check (list int)) "invalidated shard is no longer a victim" []
    (Audit.victims t ~worker:"alice");
  Alcotest.(check bool) "re-accept re-selects (rate 1)" true
    (Audit.note_accept t ~shard:1 ~worker:"carol" ~digest:"c1")

let test_export_restore_roundtrip () =
  let c = cfg ~rate:0.5 ~seed:123L () in
  let t = Audit.create c ~nshards:20 in
  for shard = 0 to 19 do
    ignore (Audit.note_accept t ~shard ~worker:(if shard mod 2 = 0 then "alice" else "bob")
              ~digest:(Printf.sprintf "d%d" shard))
  done;
  (* Pass one of the due audits, lease another (in-flight leases must
     NOT survive a restart — the obligation must). *)
  (match Audit.next_due t ~worker:"carol" ~allow_self:false with
  | Some shard -> (
      Audit.lease t ~shard ~auditor:"carol" ~epoch:2 ~now:0.;
      match Audit.complete t ~shard ~epoch:2 ~worker:"carol"
              ~digest:(Printf.sprintf "d%d" shard)
      with
      | `Pass -> ()
      | _ -> Alcotest.fail "pass")
  | None -> Alcotest.fail "rate 0.5 over 20 shards should owe audits");
  (match Audit.next_due t ~worker:"carol" ~allow_self:false with
  | Some shard -> Audit.lease t ~shard ~auditor:"carol" ~epoch:3 ~now:1.
  | None -> Alcotest.fail "a second audit should be due");
  let pending_before = Audit.pending t in
  let t' = Audit.restore c ~nshards:20 (Audit.export t) in
  Alcotest.(check int) "pending survives restore (in-flight back to due)" pending_before
    (Audit.pending t');
  Alcotest.(check bool) "export/restore is a fixpoint" true
    (Audit.export t = Audit.export t');
  (* Drain the restored machine: every completion matches its primary. *)
  let guard = ref 0 in
  let rec drain () =
    incr guard;
    if !guard > 40 then Alcotest.fail "drain runaway";
    match Audit.next_due t' ~worker:"carol" ~allow_self:false with
    | None -> ()
    | Some shard -> (
        Audit.lease t' ~shard ~auditor:"carol" ~epoch:(10 + !guard) ~now:2.;
        match Audit.complete t' ~shard ~epoch:(10 + !guard) ~worker:"carol"
                ~digest:(Printf.sprintf "d%d" shard)
        with
        | `Pass -> drain ()
        | _ -> Alcotest.fail "pass")
  in
  drain ();
  Alcotest.(check bool) "restored machine drains to finished" true (Audit.finished t')

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fmc_audit"
    [
      ( "sampler",
        [
          Alcotest.test_case "pure and restart-stable" `Quick test_sampler_pure_and_restart_stable;
          Alcotest.test_case "state machine agrees with selected_pure" `Quick
            test_sampler_matches_state_machine;
        ] );
      ("digest", [ Alcotest.test_case "canonical result digest" `Quick test_result_digest ]);
      ( "state-machine",
        [
          Alcotest.test_case "pass" `Quick test_audit_pass;
          Alcotest.test_case "dispute, verdict against primary" `Quick
            test_audit_dispute_verdict_against_primary;
          Alcotest.test_case "dispute, verdict against auditor" `Quick
            test_audit_dispute_verdict_against_auditor;
          Alcotest.test_case "epoch fencing, release, sweep" `Quick
            test_epoch_fencing_release_sweep;
          Alcotest.test_case "victims and invalidate" `Quick test_victims_and_invalidate;
          Alcotest.test_case "export/restore roundtrip" `Quick test_export_restore_roundtrip;
        ] );
    ]
