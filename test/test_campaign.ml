(* Tests for the fault-tolerant campaign runner: checkpoint/resume
   bit-exactness, per-sample quarantine accounting, pooled-ESS report
   merging and the dmem power-of-two guard. *)

module Programs = Fmc_isa.Programs
module System = Fmc_cpu.System
open Fmc

let ctx = lazy (Experiments.context ())
let engine () = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write

let prepare strategy =
  let e = engine () in
  Sampler.prepare ~static_vuln:(Engine.static_vulnerable e) strategy
    (Experiments.default_attack (Lazy.force ctx))
    (Experiments.precharac (Lazy.force ctx))
    ~placement:(Engine.placement e)

let no_signals = { Campaign.default_config with Campaign.handle_signals = false }

let exact = Alcotest.(check (float 0.))

let check_reports_equal (a : Ssf.report) (b : Ssf.report) =
  Alcotest.(check string) "strategy" a.Ssf.strategy b.Ssf.strategy;
  Alcotest.(check int) "n" a.Ssf.n b.Ssf.n;
  exact "ssf" a.Ssf.ssf b.Ssf.ssf;
  exact "ssf_upper" a.Ssf.ssf_upper b.Ssf.ssf_upper;
  exact "variance" a.Ssf.variance b.Ssf.variance;
  exact "ess" a.Ssf.ess b.Ssf.ess;
  exact "sum_w" a.Ssf.sum_w b.Ssf.sum_w;
  exact "sum_w2" a.Ssf.sum_w2 b.Ssf.sum_w2;
  Alcotest.(check int) "successes" a.Ssf.successes b.Ssf.successes;
  Alcotest.(check int) "masked" a.Ssf.outcomes.Ssf.masked b.Ssf.outcomes.Ssf.masked;
  Alcotest.(check int) "mem_only" a.Ssf.outcomes.Ssf.mem_only b.Ssf.outcomes.Ssf.mem_only;
  Alcotest.(check int) "resumed" a.Ssf.outcomes.Ssf.resumed b.Ssf.outcomes.Ssf.resumed;
  Alcotest.(check int) "quarantined" a.Ssf.outcomes.Ssf.quarantined
    b.Ssf.outcomes.Ssf.quarantined;
  Alcotest.(check int) "q_crashed" a.Ssf.outcomes.Ssf.q_crashed b.Ssf.outcomes.Ssf.q_crashed;
  Alcotest.(check int) "q_timed_out" a.Ssf.outcomes.Ssf.q_timed_out
    b.Ssf.outcomes.Ssf.q_timed_out;
  Alcotest.(check int) "by_direct" a.Ssf.success_by_direct b.Ssf.success_by_direct;
  Alcotest.(check int) "by_comb" a.Ssf.success_by_comb b.Ssf.success_by_comb;
  Alcotest.(check (list (pair int (float 0.)))) "trace" a.Ssf.trace b.Ssf.trace;
  Alcotest.(check (list (pair (pair string int) (float 0.))))
    "contributions" a.Ssf.contributions b.Ssf.contributions

let with_tmp name f =
  let path = Filename.temp_file "fmc-campaign" name in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* ------------------------------------------------------------------ *)

let test_campaign_matches_estimate () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let baseline = Ssf.estimate e prep ~samples:300 ~seed:11 in
  let r = Campaign.run ~config:no_signals e prep ~samples:300 ~seed:11 in
  Alcotest.(check bool) "completed" true (r.Campaign.status = Campaign.Completed);
  Alcotest.(check int) "nothing quarantined" 0 (List.length r.Campaign.quarantined);
  check_reports_equal baseline r.Campaign.report

let test_checkpoint_resume_bit_exact () =
  with_tmp "ckpt" @@ fun path ->
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let uninterrupted = Campaign.run ~config:no_signals e prep ~samples:300 ~seed:11 in
  let config =
    { no_signals with Campaign.checkpoint_path = Some path; Campaign.checkpoint_every = 60 }
  in
  (* Kill the campaign mid-flight via the stop predicate... *)
  let half = Campaign.run ~config ~stop:(fun i -> i >= 150) e prep ~samples:300 ~seed:11 in
  Alcotest.(check bool) "interrupted" true (half.Campaign.status = Campaign.Interrupted);
  Alcotest.(check int) "partial n" 150 half.Campaign.report.Ssf.n;
  (* ...and continue from the durable checkpoint on a fresh engine. *)
  let e2 = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write in
  let resumed = Campaign.resume ~config:no_signals e2 prep ~path in
  Alcotest.(check bool) "resumed to completion" true
    (resumed.Campaign.status = Campaign.Completed);
  check_reports_equal uninterrupted.Campaign.report resumed.Campaign.report

let test_quarantine_accounting () =
  with_tmp "journal" @@ fun journal ->
  Sys.remove journal;
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let fault_hook i _ = if i mod 50 = 0 then failwith "injected evaluation crash" in
  let config = { no_signals with Campaign.journal_path = Some journal } in
  let r = Campaign.run ~config ~fault_hook e prep ~samples:300 ~seed:11 in
  let o = r.Campaign.report.Ssf.outcomes in
  Alcotest.(check int) "quarantined count" 6 o.Ssf.quarantined;
  Alcotest.(check int) "all attributed to the crash guard" 6 o.Ssf.q_crashed;
  Alcotest.(check int) "none to the watchdog" 0 o.Ssf.q_timed_out;
  Alcotest.(check int) "buckets partition n" 300
    (o.Ssf.masked + o.Ssf.mem_only + o.Ssf.resumed + o.Ssf.quarantined);
  Alcotest.(check int) "entries match" 6 (List.length r.Campaign.quarantined);
  List.iter
    (fun (q : Campaign.quarantine_entry) ->
      Alcotest.(check int) "indices are the injected ones" 0 (q.Campaign.q_index mod 50);
      match q.Campaign.q_disposition with
      | Campaign.Crashed msg -> Alcotest.(check bool) "crash message kept" true (String.length msg > 0)
      | Campaign.Timed_out -> Alcotest.fail "expected Crashed")
    r.Campaign.quarantined;
  Alcotest.(check bool) "upper bound dominates" true
    (r.Campaign.report.Ssf.ssf_upper >= r.Campaign.report.Ssf.ssf);
  (* The journal carries one JSON line per quarantined sample. *)
  let ic = open_in journal in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "journal lines" 6 (List.length !lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "looks like JSON" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    !lines

let test_cycle_budget_timeout () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let baseline = Ssf.estimate e prep ~samples:300 ~seed:11 in
  (* A zero budget times out the samples that need RTL resume cycles;
     masked and analytical samples never arm the watchdog, and the RNG
     stream is unaffected (draws happen before evaluation), so the outcome
     split lines up sample-for-sample with the unbudgeted run. A resume
     landing exactly on the halt cycle needs zero further steps and
     legitimately survives the budget, hence the partition check rather
     than strict equality with the baseline's resumed bucket. *)
  let config = { no_signals with Campaign.sample_budget = Some 0 } in
  let r = Campaign.run ~config e prep ~samples:300 ~seed:11 in
  let o = r.Campaign.report.Ssf.outcomes in
  Alcotest.(check int) "resumes partition into survived + timed out"
    baseline.Ssf.outcomes.Ssf.resumed (o.Ssf.resumed + o.Ssf.quarantined);
  Alcotest.(check int) "masked unchanged" baseline.Ssf.outcomes.Ssf.masked o.Ssf.masked;
  Alcotest.(check int) "analytical unchanged" baseline.Ssf.outcomes.Ssf.mem_only o.Ssf.mem_only;
  Alcotest.(check bool) "most resumes time out" true (o.Ssf.quarantined > o.Ssf.resumed);
  Alcotest.(check int) "all attributed to the watchdog" o.Ssf.quarantined o.Ssf.q_timed_out;
  Alcotest.(check int) "none to the crash guard" 0 o.Ssf.q_crashed;
  List.iter
    (fun (q : Campaign.quarantine_entry) ->
      Alcotest.(check bool) "timed out" true (q.Campaign.q_disposition = Campaign.Timed_out))
    r.Campaign.quarantined

let test_merge_reports_pooled_ess () =
  let e = engine () in
  let prep = prepare Sampler.Random in
  let a = Ssf.estimate e prep ~samples:300 ~seed:3 in
  let b = Ssf.estimate e prep ~samples:300 ~seed:4 in
  let m = Ssf.merge_reports [ a; b ] in
  Alcotest.(check int) "n pools" 600 m.Ssf.n;
  exact "sum_w pools" (a.Ssf.sum_w +. b.Ssf.sum_w) m.Ssf.sum_w;
  exact "sum_w2 pools" (a.Ssf.sum_w2 +. b.Ssf.sum_w2) m.Ssf.sum_w2;
  Alcotest.(check (float 1e-9)) "ess is Kish of pooled sums"
    ((m.Ssf.sum_w *. m.Ssf.sum_w) /. m.Ssf.sum_w2)
    m.Ssf.ess;
  (* Plain Monte Carlo draws unit weights, so the pooled ESS must be the
     pooled sample count — the old mean-of-ESS pooling got this wrong for
     any pair of reports with different weight scales. *)
  Alcotest.(check (float 1e-6)) "random strategy: ess = n" 600. m.Ssf.ess;
  (* Pooled estimate is the n-weighted mean. *)
  Alcotest.(check (float 1e-9)) "pooled ssf" ((a.Ssf.ssf +. b.Ssf.ssf) /. 2.) m.Ssf.ssf

let test_dmem_power_of_two_guard () =
  Alcotest.(check bool) "non-power-of-two rejected" true
    (try
       ignore (System.create { Programs.illegal_write with Programs.dmem_size = 100 });
       false
     with Invalid_argument msg ->
       (* The message must name the culprit and the constraint. *)
       let has sub =
         let n = String.length sub and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
         go 0
       in
       has "dmem_size" && has "power of two");
  (* Powers of two are accepted unchanged (large enough for the benchmark's
     protected word at 0x300). *)
  ignore (System.create { Programs.illegal_write with Programs.dmem_size = 2048 })

let test_observability_invariance () =
  (* Full instrumentation must never perturb the statistics: metrics,
     spans and progress read the sample stream but not the RNG, so the
     report is bit-identical to an uninstrumented run. *)
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let baseline = Campaign.run ~config:no_signals e prep ~samples:300 ~seed:11 in
  let reg = Fmc_obs.Metrics.create () in
  let tracer = Fmc_obs.Span.create ~capacity:256 () in
  let points = ref 0 in
  let obs =
    Fmc_obs.Obs.create ~metrics:reg ~tracer ~progress:(fun _ -> incr points) ()
  in
  let instrumented = Campaign.run ~config:no_signals ~obs e prep ~samples:300 ~seed:11 in
  check_reports_equal baseline.Campaign.report instrumented.Campaign.report;
  (* ...and the sinks actually saw the run. *)
  Alcotest.(check bool) "progress points emitted" true (!points > 0);
  Alcotest.(check bool) "spans recorded" true (Fmc_obs.Span.recorded tracer > 0);
  let samples_total =
    match List.assoc_opt "fmc_samples_total" (Fmc_obs.Metrics.snapshot reg) with
    | Some (_, Fmc_obs.Metrics.Counter v) -> v
    | _ -> Alcotest.fail "fmc_samples_total missing"
  in
  Alcotest.(check (float 0.)) "sample counter" 300. samples_total;
  Alcotest.(check bool) "engine handle restored" true
    (not (Fmc_obs.Obs.enabled (Engine.obs e)));
  (* Wall-clock accounting is monotone and consistent. *)
  Alcotest.(check bool) "elapsed measured" true (instrumented.Campaign.elapsed_s >= 0.);
  Alcotest.(check bool) "throughput finite" true
    (Float.is_finite instrumented.Campaign.samples_per_sec)

let test_parallel_obs_merge () =
  (* Every worker domain observes into a private fork of the handle; the
     supervisor absorbs them after the join, so the merged metrics cover
     the whole run and the merged trace interleaves per-worker tids. *)
  let prep = prepare Sampler.default_mixed in
  let factory () =
    Engine.create ~precharac:(Experiments.precharac (Lazy.force ctx)) Programs.illegal_write
  in
  let reg = Fmc_obs.Metrics.create () in
  let tracer = Fmc_obs.Span.create ~capacity:4096 () in
  let obs = Fmc_obs.Obs.create ~metrics:reg ~tracer () in
  let baseline =
    Ssf.estimate_parallel ~domains:2 ~causal:false ~engine_factory:factory prep ~samples:600
      ~seed:5
  in
  let r =
    Ssf.estimate_parallel ~domains:2 ~causal:false ~obs ~engine_factory:factory prep
      ~samples:600 ~seed:5
  in
  exact "deterministic under obs" baseline.Ssf.ssf r.Ssf.ssf;
  (match List.assoc_opt "fmc_samples_total" (Fmc_obs.Metrics.snapshot reg) with
  | Some (_, Fmc_obs.Metrics.Counter v) -> exact "workers' counters merged" 600. v
  | _ -> Alcotest.fail "fmc_samples_total missing");
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Fmc_obs.Span.ev_tid) (Fmc_obs.Span.events tracer))
  in
  Alcotest.(check bool) "per-worker tids present" true (List.length tids >= 1 && List.for_all (fun t -> t >= 1) tids)

let test_corrupt_checkpoint_rejected () =
  with_tmp "corrupt" @@ fun path ->
  let oc = open_out path in
  output_string oc "faultmc-campaign 1\nstrategy mixed\nnot a valid line\n";
  close_out oc;
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  Alcotest.(check bool) "corrupt file raises" true
    (try
       ignore (Campaign.resume ~config:no_signals e prep ~path);
       false
     with Campaign.Checkpoint_corrupt { path = p; _ } -> p = path);
  (* A future format version is refused rather than misread. *)
  let oc = open_out path in
  output_string oc "faultmc-campaign 99\n";
  close_out oc;
  Alcotest.(check bool) "version mismatch raises" true
    (try
       ignore (Campaign.resume ~config:no_signals e prep ~path);
       false
     with Campaign.Checkpoint_corrupt { path = p; _ } -> p = path)

let () =
  Alcotest.run "campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "matches Ssf.estimate" `Slow test_campaign_matches_estimate;
          Alcotest.test_case "checkpoint/resume bit-exact" `Slow test_checkpoint_resume_bit_exact;
          Alcotest.test_case "quarantine accounting" `Slow test_quarantine_accounting;
          Alcotest.test_case "cycle-budget timeout" `Slow test_cycle_budget_timeout;
          Alcotest.test_case "merge pooled ess" `Slow test_merge_reports_pooled_ess;
          Alcotest.test_case "observability invariance" `Slow test_observability_invariance;
          Alcotest.test_case "parallel obs merge" `Slow test_parallel_obs_merge;
          Alcotest.test_case "dmem power-of-two guard" `Quick test_dmem_power_of_two_guard;
          Alcotest.test_case "corrupt checkpoint rejected" `Quick test_corrupt_checkpoint_rejected;
        ] );
    ]
