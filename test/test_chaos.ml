(* Chaos-hardening tests: CRC-32 vectors and frame rejection, v1-peer
   detection, reconnect backoff jitter bounds, the circuit breaker state
   machine under a fake clock, fault-plan parsing, and the headline
   property — a full loopback campaign pushed through the deterministic
   fault-injection proxy (bit flips, duplicated and severed chunks,
   periodic partitions, plus a worker dying mid-shard and a malicious
   client tripping a breaker) still merges to a report byte-identical
   to the fault-free single-process reference. *)

module Programs = Fmc_isa.Programs
module Rng = Fmc_prelude.Rng
module Metrics = Fmc_obs.Metrics
open Fmc
open Fmc_dist

let ctx = lazy (Experiments.context ())
let engine () = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write

let prepare strategy =
  let e = engine () in
  Sampler.prepare ~static_vuln:(Engine.static_vulnerable e) strategy
    (Experiments.default_attack (Lazy.force ctx))
    (Experiments.precharac (Lazy.force ctx))
    ~placement:(Engine.placement e)

(* ------------------------------------------------------------------ *)
(* CRC-32 *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check bool) "order matters" true (Crc32.string "ab" <> Crc32.string "ba")

let test_crc32_extend_composition () =
  let a = "the quick brown fox" and b = " jumps over the lazy dog" in
  Alcotest.(check int) "extend composes"
    (Crc32.string (a ^ b))
    (Crc32.extend (Crc32.string a) b);
  let buf = Bytes.of_string (a ^ b) in
  Alcotest.(check int) "extend_sub matches extend"
    (Crc32.string b)
    (Crc32.extend_sub 0 buf ~pos:(String.length a) ~len:(String.length b))

(* ------------------------------------------------------------------ *)
(* Wire frames: round-trip, corruption rejection, v1 detection *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

(* Pull the raw frame bytes a writer produced so the test can corrupt
   them before replaying them into a reader. *)
let raw_frame_of ~tag payload =
  with_socketpair (fun a b ->
      Wire.write_frame (Wire.conn a) ~tag payload;
      let buf = Bytes.create 4096 in
      let n = Unix.read b buf 0 4096 in
      Bytes.sub buf 0 n)

let feed_and_read raw =
  with_socketpair (fun a b ->
      ignore (Unix.write a raw 0 (Bytes.length raw));
      Wire.read_frame_raw (Wire.conn b))

let test_frame_roundtrip () =
  let payload = "hello\nworld\x00binary\xff" in
  match feed_and_read (raw_frame_of ~tag:'H' payload) with
  | `Ok (tag, p) ->
      Alcotest.(check char) "tag" 'H' tag;
      Alcotest.(check string) "payload" payload p
  | `Corrupt _ -> Alcotest.fail "clean frame flagged corrupt"

let test_frame_corruption_rejected () =
  let payload = "fingerprint v2 strategy=mixed seed=7" in
  let raw = raw_frame_of ~tag:'H' payload in
  (* Flip one payload bit: framing survives, checksum must not. *)
  let i = Bytes.length raw - 3 in
  Bytes.set raw i (Char.chr (Char.code (Bytes.get raw i) lxor 0x10));
  (match feed_and_read raw with
  | `Corrupt (tag, _) -> Alcotest.(check char) "tag still readable" 'H' tag
  | `Ok _ -> Alcotest.fail "bit flip not detected");
  (* And the raising variant raises the typed error. *)
  with_socketpair (fun a b ->
      ignore (Unix.write a raw 0 (Bytes.length raw));
      match Wire.read_frame (Wire.conn b) with
      | _ -> Alcotest.fail "expected Protocol_error"
      | exception Wire.Protocol_error _ -> ())

let test_oversized_frame_rejected () =
  with_socketpair (fun a b ->
      let header = Bytes.create 5 in
      Bytes.set_int32_be header 0 0x7fffffffl;
      Bytes.set header 4 'H';
      ignore (Unix.write a header 0 5);
      match Wire.read_frame_raw (Wire.conn b) with
      | _ -> Alcotest.fail "expected Protocol_error"
      | exception Wire.Protocol_error _ -> ())

let test_v1_hello_detected () =
  (* A v1 peer's Hello ([len][tag][payload], no CRC) must parse as a
     corrupt v2 frame carrying the intact v1 payload, and the sniffer
     must identify it so the coordinator can answer in v1 framing. *)
  let _, payload =
    Protocol.encode_client
      (Protocol.Hello { version = 1; worker = "old"; fingerprint = "v1 whatever" })
  in
  with_socketpair (fun a b ->
      Wire.write_frame_v1 (Wire.conn a) ~tag:'H' payload;
      match Wire.read_frame_raw (Wire.conn b) with
      | `Corrupt (tag, raw) ->
          Alcotest.(check char) "tag" 'H' tag;
          (match Protocol.v1_hello ~tag raw with
          | Some 1 -> ()
          | Some v -> Alcotest.failf "wrong sniffed version %d" v
          | None -> Alcotest.fail "v1 hello not recognized")
      | `Ok _ -> Alcotest.fail "a v1 frame cannot be a valid v2 frame")

(* ------------------------------------------------------------------ *)
(* Reconnect backoff *)

let test_backoff_jitter_bounds () =
  let retry = { Worker.base_s = 0.1; cap_s = 2.0; max_attempts = 10; budget_s = 60. } in
  let rng = Rng.substream ~seed:99L ~shard:0 in
  let prev = ref retry.Worker.base_s in
  let saw_growth = ref false in
  for _ = 1 to 500 do
    let hi = Float.min retry.Worker.cap_s (Float.max (0.15) (!prev *. 3.)) in
    let s = Worker.next_backoff rng retry ~prev:!prev in
    Alcotest.(check bool) "above base" true (s >= retry.Worker.base_s);
    Alcotest.(check bool) "below cap" true (s <= retry.Worker.cap_s);
    Alcotest.(check bool) "below decorrelated ceiling" true (s <= hi +. 1e-9);
    if s > !prev then saw_growth := true;
    prev := s
  done;
  Alcotest.(check bool) "backoff actually grows" true !saw_growth;
  (* Same substream, same schedule: the sleeps are replayable. *)
  let a = Rng.substream ~seed:7L ~shard:1 and b = Rng.substream ~seed:7L ~shard:1 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "deterministic"
      (Worker.next_backoff a retry ~prev:0.3)
      (Worker.next_backoff b retry ~prev:0.3)
  done

(* ------------------------------------------------------------------ *)
(* Circuit breaker under a fake clock *)

let test_breaker_lifecycle () =
  let b = Breaker.create { Breaker.failure_threshold = 3; cooldown_s = 10. } in
  Alcotest.(check bool) "starts closed" true (Breaker.state b ~now:0. = Breaker.Closed);
  Breaker.record_failure b ~now:1.;
  Breaker.record_failure b ~now:2.;
  Alcotest.(check bool) "below threshold stays closed" true (Breaker.allow b ~now:2.);
  (* A success resets the consecutive count. *)
  Breaker.record_success b ~now:3.;
  Breaker.record_failure b ~now:4.;
  Breaker.record_failure b ~now:5.;
  Alcotest.(check bool) "reset count keeps it closed" true (Breaker.allow b ~now:5.);
  Breaker.record_failure b ~now:6.;
  Alcotest.(check bool) "third consecutive failure trips" true
    (Breaker.state b ~now:6. = Breaker.Open);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check bool) "open refuses" false (Breaker.allow b ~now:10.);
  Alcotest.(check (float 1e-9)) "cooldown remaining" 6. (Breaker.cooldown_remaining b ~now:10.);
  (* Cooldown elapses: half-open admits exactly one probe. *)
  Alcotest.(check bool) "half-open after cooldown" true
    (Breaker.state b ~now:16.5 = Breaker.Half_open);
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b ~now:16.5);
  Alcotest.(check bool) "second probe refused" false (Breaker.allow b ~now:16.6);
  (* Probe failure re-opens for a fresh cooldown. *)
  Breaker.record_failure b ~now:17.;
  Alcotest.(check bool) "probe failure re-opens" true (Breaker.state b ~now:17. = Breaker.Open);
  Alcotest.(check int) "second trip" 2 (Breaker.trips b);
  (* Next window's probe succeeds and closes it. *)
  Alcotest.(check bool) "next probe admitted" true (Breaker.allow b ~now:28.);
  Breaker.record_success b ~now:28.;
  Alcotest.(check bool) "probe success closes" true (Breaker.state b ~now:28. = Breaker.Closed);
  Alcotest.(check bool) "closed serves again" true (Breaker.allow b ~now:28.)

(* ------------------------------------------------------------------ *)
(* Fault-plan grammar *)

let test_plan_parse_roundtrip () =
  let src = "delay p=0.1 min=0.005 max=0.05\nbitflip p=0.02; dup p=0.01\n# comment\ndrop p=0.005\ntruncate p=0.01\npartition every=5 for=1\nlie p=0.3" in
  match Fmc_chaos.Plan.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok plan ->
      Alcotest.(check int) "clauses" 7 (List.length plan.Fmc_chaos.Plan.faults);
      (match Fmc_chaos.Plan.parse (Fmc_chaos.Plan.to_string plan) with
      | Ok plan' ->
          Alcotest.(check string) "round-trips"
            (Fmc_chaos.Plan.to_string plan)
            (Fmc_chaos.Plan.to_string plan')
      | Error msg -> Alcotest.failf "re-parse failed: %s" msg)

let test_plan_parse_rejects () =
  let bad =
    [
      "bitflip p=1.5";  (* probability out of range *)
      "warp p=0.1";  (* unknown keyword *)
      "delay p=0.1 min=0.2 max=0.1";  (* min > max *)
      "partition every=1 for=2";  (* window wider than period *)
      "drop";  (* missing parameter *)
      "drop p=x";  (* not a number *)
      "lie p=1.5";  (* probability out of range *)
      "lie";  (* missing parameter *)
    ]
  in
  List.iter
    (fun src ->
      match Fmc_chaos.Plan.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad plan %S" src)
    bad

(* ------------------------------------------------------------------ *)
(* Loopback campaigns through the chaos proxy *)

let send conn msg =
  let tag, payload = Protocol.encode_client msg in
  Wire.write_frame conn ~tag payload

let recv conn =
  let tag, payload = Wire.read_frame conn in
  match Protocol.decode_server tag payload with
  | Ok m -> m
  | Error msg -> Alcotest.failf "server sent garbage: %s" msg

let temp_sock prefix =
  let p = Filename.temp_file prefix ".sock" in
  Sys.remove p;
  p

let check_byte_identical (reference : Ssf.report) (dist : Ssf.report) =
  Alcotest.(check string) "merged JSON byte-identical"
    (Export.report_json reference) (Export.report_json dist)

(* Deterministic breaker/reconnect scenario: a malicious client sends
   corrupt frames under a real worker's name until the breaker trips;
   the real worker then gets parked with Retry_later, backs off, probes
   the half-open breaker and finishes the campaign anyway. *)
let test_breaker_parks_and_recovers () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 60 and shard_size = 30 and seed = 5 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let fingerprint =
    Protocol.fingerprint ~strategy:(Sampler.name prep) ~benchmark:"write" ~samples ~seed
      ~shard_size ~sample_budget:None ()
  in
  let sock = temp_sock "fmc-chaos-brk" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let addr = Wire.Unix_path sock in
      let config =
        {
          (Coordinator.default_config addr) with
          Coordinator.ttl_s = 5.;
          linger_s = 0.5;
          breaker = { Breaker.failure_threshold = 2; cooldown_s = 0.4 };
        }
      in
      let creg = Metrics.create () in
      let cobs = Fmc_obs.Obs.create ~metrics:creg () in
      let outcome = ref None in
      let server =
        Thread.create (fun () -> outcome := Some (Coordinator.serve ~obs:cobs config ~fingerprint ~plan)) ()
      in
      (* Two corrupt frames under the name "w1" trip its breaker. The
         coordinator hangs up after each, so reconnect between them. *)
      let corrupt_once () =
        let fd = Wire.connect ~attempts:40 ~delay_s:0.05 addr in
        let conn = Wire.conn fd in
        send conn (Protocol.Hello { version = Protocol.version; worker = "w1"; fingerprint });
        (match recv conn with
        | Protocol.Welcome _ -> ()
        | _ -> Alcotest.fail "expected welcome");
        let raw = raw_frame_of ~tag:'R' "" in
        Bytes.set raw 5 (Char.chr (Char.code (Bytes.get raw 5) lxor 0x01)) (* break the CRC *);
        ignore (Unix.write fd raw 0 (Bytes.length raw));
        (match recv conn with
        | Protocol.Retry_later _ -> ()
        | _ -> Alcotest.fail "corrupt frame must be answered with Retry_later");
        Wire.close conn
      in
      corrupt_once ();
      corrupt_once ();
      (* The real w1 now runs into the open breaker, gets parked, backs
         off and completes the whole campaign once admitted. *)
      let wreg = Metrics.create () in
      let wobs = Fmc_obs.Obs.create ~metrics:wreg () in
      let wcfg =
        {
          (Worker.default_config ~addr ~worker_name:"w1") with
          Worker.heartbeat_every = 7;
          retry_delay_s = 0.05;
          retry = { Worker.base_s = 0.05; cap_s = 0.5; max_attempts = 20; budget_s = 30. };
        }
      in
      let accepted = Worker.run ~obs:wobs wcfg ~fingerprint e prep ~seed in
      Alcotest.(check int) "parked worker still ran every shard" (Array.length plan) accepted;
      Thread.join server;
      let oc = match !outcome with Some o -> o | None -> Alcotest.fail "no outcome" in
      let dist =
        match Merge.report_of_blobs ~strategy:(Sampler.name prep) oc.Coordinator.oc_shards with
        | Ok r -> r
        | Error msg -> Alcotest.failf "merge failed: %s" msg
      in
      let reference = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
      check_byte_identical reference.Campaign.report dist;
      let counter reg name =
        match Metrics.find (Metrics.snapshot reg) name with
        | Some (Metrics.Counter v) -> v
        | _ -> 0.
      in
      Alcotest.(check bool) "corrupt frames counted" true
        (counter creg "fmc_dist_frames_corrupt_total" >= 2.);
      Alcotest.(check bool) "breaker tripped" true
        (counter creg "fmc_dist_breaker_opened_total" >= 1.);
      Alcotest.(check bool) "worker reconnected" true
        (counter wreg "fmc_dist_reconnects_total" >= 1.);
      match Metrics.find (Metrics.snapshot wreg) "fmc_dist_reconnect_backoff_seconds" with
      | Some (Metrics.Histo h) ->
          Alcotest.(check bool) "backoff sleeps observed" true (h.Metrics.count >= 1)
      | _ -> Alcotest.fail "missing backoff histogram")

(* The headline property, over several seeded fault plans: an aggressive
   chaos plan (bit flips, duplicated chunks, severed connections, small
   delays, periodic partitions) between the coordinator and everything
   else — plus a worker dying mid-shard — never changes a byte of the
   merged report. *)
let chaos_round ~round =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 90 and shard_size = 30 and seed = 5 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let fingerprint =
    Protocol.fingerprint ~strategy:(Sampler.name prep) ~benchmark:"write" ~samples ~seed
      ~shard_size ~sample_budget:None ()
  in
  let hidden = temp_sock "fmc-chaos-up" in
  let public = temp_sock "fmc-chaos-pub" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ hidden; public ])
    (fun () ->
      let upstream = Wire.Unix_path hidden in
      let proxy_addr = Wire.Unix_path public in
      let config =
        {
          (Coordinator.default_config upstream) with
          Coordinator.ttl_s = 1.0;
          linger_s = 1.0;
          (* A bit flip in a frame's length word leaves the reader
             waiting for bytes that never come; short deadlines turn
             that stall into a quick typed Timeout. *)
          io_deadline_s = 2.;
          breaker = { Breaker.failure_threshold = 4; cooldown_s = 0.3 };
        }
      in
      let creg = Metrics.create () in
      let cobs = Fmc_obs.Obs.create ~metrics:creg () in
      let outcome = ref None in
      let server =
        Thread.create
          (fun () -> outcome := Some (Coordinator.serve ~obs:cobs config ~fingerprint ~plan))
          ()
      in
      let cplan =
        match
          Fmc_chaos.Plan.parse
            "bitflip p=0.05; dup p=0.03; drop p=0.02; delay p=0.2 min=0.001 max=0.005; \
             partition every=1.2 for=0.2"
        with
        | Ok p -> p
        | Error msg -> Alcotest.failf "chaos plan: %s" msg
      in
      let events = ref 0 in
      let proxy =
        Fmc_chaos.Proxy.start
          ~on_event:(fun _ -> incr events)
          ~listen:proxy_addr ~upstream ~plan:cplan
          ~seed:(Int64.of_int (1000 + round))
          ()
      in
      Fun.protect
        ~finally:(fun () -> Fmc_chaos.Proxy.stop proxy)
        (fun () ->
          (* A worker killed mid-shard: lease through the proxy, go
             silent past the TTL, report under the fenced epoch. Chaos
             may sever it earlier — both deaths exercise the same
             re-issue path, so any transport error is acceptable. *)
          (try
             let fd = Wire.connect ~attempts:40 ~delay_s:0.05 proxy_addr in
             let conn = Wire.conn ~deadline_s:3. fd in
             send conn
               (Protocol.Hello { version = Protocol.version; worker = "dying"; fingerprint });
             (match recv conn with Protocol.Welcome _ -> () | _ -> ());
             send conn Protocol.Request_shard;
             (match recv conn with
             | Protocol.Assign { shard; epoch; start; len } ->
                 let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
                 Thread.delay 1.3;
                 send conn
                   (Protocol.Shard_done
                      {
                        shard;
                        epoch;
                        tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot;
                        quarantined = sh.Campaign.sh_quarantined;
                      });
                 ignore (recv conn)
             | _ -> ());
             Wire.close conn
           with
          | Wire.Closed | Wire.Timeout | Wire.Protocol_error _ | Unix.Unix_error _ -> ());
          (* Two live workers push the campaign home through the chaos. *)
          let worker name =
            let wcfg =
              {
                (Worker.default_config ~addr:proxy_addr ~worker_name:name) with
                Worker.heartbeat_every = 7;
                retry_delay_s = 0.05;
                connect_attempts = 40;
                io_deadline_s = 2.;
                retry = { Worker.base_s = 0.05; cap_s = 0.5; max_attempts = 100; budget_s = 120. };
              }
            in
            Thread.create (fun () -> ignore (Worker.run wcfg ~fingerprint e prep ~seed)) ()
          in
          let w1 = worker "w1" and w2 = worker "w2" in
          Thread.join w1;
          Thread.join w2;
          Thread.join server;
          let oc = match !outcome with Some o -> o | None -> Alcotest.fail "no outcome" in
          Alcotest.(check int) "all shard results" (Array.length plan)
            (List.length oc.Coordinator.oc_shards);
          let dist =
            match Merge.report_of_blobs ~strategy:(Sampler.name prep) oc.Coordinator.oc_shards with
            | Ok r -> r
            | Error msg -> Alcotest.failf "merge failed: %s" msg
          in
          let reference = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
          check_byte_identical reference.Campaign.report dist;
          let faults =
            List.fold_left (fun n (_, c) -> n + c) 0 (Fmc_chaos.Proxy.fault_counts proxy)
          in
          Alcotest.(check bool) "event log saw every fault" true (!events >= faults && faults >= 0);
          faults))

(* The adversarial fault: a proxy that rewrites result frames in
   flight, re-sealing the CRC-32 so the lie passes every transport
   check. A worker that attaches no digest gets its (mutated) results
   accepted — and only the audit layer can recover: honest
   re-execution disputes each lie, the lone remaining worker
   arbitrates, the verdict quarantines the liar and invalidates its
   unvindicated shards for honest re-execution. The merged report must
   still come out byte-identical to the fault-free reference. *)
let test_lying_proxy_caught_by_audit () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 90 and shard_size = 30 and seed = 5 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let fingerprint =
    Protocol.fingerprint ~strategy:(Sampler.name prep) ~benchmark:"write" ~samples ~seed
      ~shard_size ~sample_budget:None ()
  in
  let hidden = temp_sock "fmc-chaos-lie-up" in
  let public = temp_sock "fmc-chaos-lie-pub" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ hidden; public ])
    (fun () ->
      let upstream = Wire.Unix_path hidden in
      let proxy_addr = Wire.Unix_path public in
      let config =
        {
          (Coordinator.default_config upstream) with
          Coordinator.ttl_s = 5.0;
          linger_s = 1.0;
          audit_rate = 1.0;
        }
      in
      let creg = Metrics.create () in
      let cobs = Fmc_obs.Obs.create ~metrics:creg () in
      let outcome = ref None in
      let server =
        Thread.create
          (fun () -> outcome := Some (Coordinator.serve ~obs:cobs config ~fingerprint ~plan))
          ()
      in
      let cplan =
        match Fmc_chaos.Plan.parse "lie p=1" with
        | Ok p -> p
        | Error msg -> Alcotest.failf "chaos plan: %s" msg
      in
      let proxy = Fmc_chaos.Proxy.start ~listen:proxy_addr ~upstream ~plan:cplan ~seed:77L () in
      Fun.protect
        ~finally:(fun () -> Fmc_chaos.Proxy.stop proxy)
        (fun () ->
          (* The liar: runs every shard honestly but attaches no digest,
             and every Shard_done crosses the lying proxy. The mutated
             results arrive wire-valid and are accepted. *)
          let fd = Wire.connect ~attempts:40 ~delay_s:0.05 proxy_addr in
          let conn = Wire.conn fd in
          send conn
            (Protocol.Hello { version = Protocol.version; worker = "mallory"; fingerprint });
          (match recv conn with
          | Protocol.Welcome _ -> ()
          | _ -> Alcotest.fail "expected welcome");
          let rec grab n =
            if n > 0 then begin
              send conn Protocol.Request_shard;
              match recv conn with
              | Protocol.Assign { shard; epoch; start; len } ->
                  let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
                  send conn
                    (Protocol.Shard_done
                       {
                         shard;
                         epoch;
                         tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot;
                         quarantined = sh.Campaign.sh_quarantined;
                       });
                  (match recv conn with
                  | Protocol.Ack { accepted = true; _ } -> ()
                  | _ -> Alcotest.fail "an undigested lie must be accepted");
                  grab (n - 1)
              | _ -> Alcotest.fail "expected an assignment"
            end
          in
          grab (Array.length plan);
          Wire.close conn;
          (* The honest worker connects directly: no primary work left,
             only audits — then the arbitrations, then the honest
             re-runs of the invalidated shards. *)
          let wcfg =
            {
              (Worker.default_config ~addr:upstream ~worker_name:"alice") with
              Worker.heartbeat_every = 7;
              retry_delay_s = 0.1;
            }
          in
          let accepted = Worker.run wcfg ~fingerprint e prep ~seed in
          Alcotest.(check bool) "honest worker executed audits and re-runs" true (accepted >= 1);
          Thread.join server;
          let oc = match !outcome with Some o -> o | None -> Alcotest.fail "no outcome" in
          Alcotest.(check int) "all shard results" (Array.length plan)
            (List.length oc.Coordinator.oc_shards);
          let dist =
            match Merge.report_of_blobs ~strategy:(Sampler.name prep) oc.Coordinator.oc_shards with
            | Ok r -> r
            | Error msg -> Alcotest.failf "merge failed: %s" msg
          in
          let reference = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
          check_byte_identical reference.Campaign.report dist;
          Alcotest.(check bool) "proxy rewrote every result frame" true
            (match List.assoc_opt "lie" (Fmc_chaos.Proxy.fault_counts proxy) with
            | Some n -> n >= Array.length plan
            | None -> false);
          let counter name =
            match Metrics.find (Metrics.snapshot creg) name with
            | Some (Metrics.Counter v) -> v
            | _ -> 0.
          in
          Alcotest.(check bool) "every lie disputed" true
            (counter "fmc_audit_disputes_total" >= 1.);
          Alcotest.(check bool) "unvindicated shards invalidated" true
            (counter "fmc_audit_invalidated_total" >= 1.);
          match Metrics.find (Metrics.snapshot creg) "fmc_audit_quarantined_workers" with
          | Some (Metrics.Gauge v) ->
              Alcotest.(check (float 0.)) "liar quarantined" 1. v
          | _ -> Alcotest.fail "missing gauge fmc_audit_quarantined_workers"))

let test_chaos_campaign_bit_exact () =
  (* Three seeded fault plans; the fault mix is probabilistic per round,
     so the "chaos actually happened" assertion aggregates. *)
  let total = ref 0 in
  for round = 1 to 3 do
    total := !total + chaos_round ~round
  done;
  Alcotest.(check bool) "chaos injected at least one fault" true (!total >= 1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [
      ( "crc32",
        [
          Alcotest.test_case "vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "extend composes" `Quick test_crc32_extend_composition;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick test_frame_corruption_rejected;
          Alcotest.test_case "oversized rejected" `Quick test_oversized_frame_rejected;
          Alcotest.test_case "v1 hello detected" `Quick test_v1_hello_detected;
        ] );
      ( "backoff",
        [ Alcotest.test_case "jitter bounds" `Quick test_backoff_jitter_bounds ] );
      ( "breaker",
        [ Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle ] );
      ( "plan",
        [
          Alcotest.test_case "parse round-trip" `Quick test_plan_parse_roundtrip;
          Alcotest.test_case "rejects bad plans" `Quick test_plan_parse_rejects;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "breaker parks and recovers" `Slow test_breaker_parks_and_recovers;
          Alcotest.test_case "bit-exact under chaos" `Slow test_chaos_campaign_bit_exact;
          Alcotest.test_case "lying proxy caught by audit" `Slow test_lying_proxy_caught_by_audit;
        ] );
    ]
