(* Tests for the fmc core framework: attack model, golden runs,
   pre-characterization, sampling strategies, the cross-level engine, SSF
   estimation and hardening. Heavier fixtures (processor +
   pre-characterization) are built once and shared. *)

module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module Programs = Fmc_isa.Programs
module Isa = Fmc_isa.Isa
module Arch = Fmc_cpu.Arch
module System = Fmc_cpu.System
module Circuit = Fmc_cpu.Circuit
module Rng = Fmc_prelude.Rng
open Fmc

let ctx = lazy (Experiments.context ())

let engine () = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write

let placement () = Engine.placement (engine ())

let attack () = Experiments.default_attack (Lazy.force ctx)

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_dist_uniform () =
  let d = Dist.Uniform_int (3, 7) in
  Dist.validate_int d;
  Alcotest.(check (list int)) "support" [ 3; 4; 5; 6; 7 ] (Dist.support_int d);
  Alcotest.(check (float 1e-9)) "pmf inside" 0.2 (Dist.pmf_int d 5);
  Alcotest.(check (float 1e-9)) "pmf outside" 0. (Dist.pmf_int d 8);
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    let v = Dist.sample_int d rng in
    Alcotest.(check bool) "in range" true (v >= 3 && v <= 7)
  done

let test_dist_delta_and_discrete () =
  Alcotest.(check (float 1e-9)) "delta pmf" 1. (Dist.pmf_int (Dist.Delta_int 4) 4);
  Alcotest.(check (float 1e-9)) "delta off" 0. (Dist.pmf_int (Dist.Delta_int 4) 5);
  let d = Dist.Discrete ([| 1; 5; 9 |], [| 1.; 0.; 3. |]) in
  Dist.validate_int d;
  Alcotest.(check (list int)) "support skips zero weight" [ 1; 9 ] (Dist.support_int d);
  Alcotest.(check (float 1e-9)) "pmf" 0.75 (Dist.pmf_int d 9);
  Alcotest.check_raises "empty uniform" (Invalid_argument "Dist: empty uniform range") (fun () ->
      Dist.validate_int (Dist.Uniform_int (5, 4)))

let test_dist_float () =
  let rng = Rng.create 2 in
  for _ = 1 to 200 do
    let v = Dist.sample_float (Dist.Uniform_float (1.5, 2.5)) rng in
    Alcotest.(check bool) "in range" true (v >= 1.5 && v < 2.5)
  done;
  Alcotest.(check (float 1e-9)) "degenerate" 3. (Dist.sample_float (Dist.Uniform_float (3., 3.)) rng)

(* ------------------------------------------------------------------ *)
(* Attack *)

let test_attack_block_around () =
  let p = placement () in
  let circuit = Experiments.circuit (Lazy.force ctx) in
  let roots = Circuit.responding_signals circuit in
  let all = Fmc_layout.Placement.cells p in
  let half = Attack.block_around p ~roots ~fraction:0.5 in
  let quarter = Attack.block_around p ~roots ~fraction:0.25 in
  Alcotest.(check bool) "half smaller than all" true (Array.length half < Array.length all);
  Alcotest.(check bool) "quarter smaller than half" true (Array.length quarter < Array.length half);
  Alcotest.(check bool) "roughly half" true
    (abs ((2 * Array.length half) - Array.length all) < Array.length all / 10);
  (* The quarter block is contained in the half block (same centroid). *)
  Alcotest.(check bool) "nested" true (Array.for_all (fun c -> Array.mem c half) quarter);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Attack.block_around: fraction out of (0, 1]")
    (fun () -> ignore (Attack.block_around p ~roots ~fraction:0.))

let test_attack_pmf_spatial () =
  let cells = [| 10; 20; 30; 40 |] in
  let sp = Attack.Uniform_cells cells in
  Alcotest.(check (float 1e-9)) "member" 0.25 (Attack.pmf_spatial sp 20);
  Alcotest.(check (float 1e-9)) "non-member" 0. (Attack.pmf_spatial sp 99);
  Alcotest.(check (float 1e-9)) "delta" 1. (Attack.pmf_spatial (Attack.Delta_cell 7) 7);
  Alcotest.(check (array int)) "cells" cells (Attack.spatial_cells sp)

let test_attack_validate () =
  let a = attack () in
  Attack.validate a;
  Alcotest.check_raises "empty block" (Invalid_argument "Attack.validate: empty target block")
    (fun () -> Attack.validate { a with Attack.spatial = Attack.Uniform_cells [||] });
  (* Negative timing distances are allowed (shots after the target). *)
  Attack.validate { a with Attack.temporal = Dist.Uniform_int (-5, 5) }

(* ------------------------------------------------------------------ *)
(* Golden *)

let test_golden_target_cycle () =
  let g = Golden.run Programs.illegal_write in
  Alcotest.(check bool) "target before halt" true (Golden.target_cycle g < Golden.halt_cycle g);
  Alcotest.(check bool) "target deep in user code" true (Golden.target_cycle g > 50);
  (* The instruction at the target cycle is the illegal store. *)
  let st = Golden.state_at g (Golden.target_cycle g) in
  let word = Programs.illegal_write.Programs.imem.(st.Arch.pc) in
  (match Isa.decode word with
  | Isa.St (_, _, _) -> ()
  | i -> Alcotest.failf "expected a store at Tt, got %s" (Isa.to_string i));
  Alcotest.(check int) "user mode at Tt" 0 st.Arch.mode

let test_golden_restore_at () =
  let g = Golden.run Programs.illegal_write in
  let sys = Golden.restore_at g 57 in
  Alcotest.(check int) "exact cycle" 57 (System.cycle sys);
  (* Restarting from a checkpoint replays identically: compare two paths. *)
  let a = Golden.state_at g 100 in
  let direct = System.create Programs.illegal_write in
  System.run_to_cycle direct 100;
  Alcotest.(check bool) "checkpoint replay equals direct run" true (Arch.equal a (System.state direct))

let test_golden_observables () =
  let g = Golden.run Programs.illegal_write in
  Alcotest.(check (list int)) "secret intact" [ Programs.secret_value ] (Golden.final_observables g);
  let g = Golden.run Programs.illegal_read in
  Alcotest.(check (list int)) "nothing leaked" [ 0 ] (Golden.final_observables g)

let test_golden_broken_benchmark () =
  (* A benchmark claiming an attack that never happens must be rejected. *)
  let bogus =
    {
      Programs.illegal_write with
      Programs.name = "bogus";
      imem = [| Isa.encode Isa.Halt |];
      max_cycles = 10;
    }
  in
  Alcotest.check_raises "no violation" (Failure "Golden.run: benchmark bogus never raised its violation")
    (fun () -> ignore (Golden.run bogus))

(* ------------------------------------------------------------------ *)
(* Precharac *)

let test_precharac_levels () =
  let pre = Experiments.precharac (Lazy.force ctx) in
  let l0 = Precharac.level pre 0 in
  Alcotest.(check bool) "level 0 has gates" true (Array.length l0.Fmc_netlist.Unroll.gates > 0);
  Alcotest.(check int) "level 0 has no registers" 0 (Array.length l0.Fmc_netlist.Unroll.registers);
  let l1 = Precharac.level pre 1 in
  Alcotest.(check bool) "level 1 has registers" true (Array.length l1.Fmc_netlist.Unroll.registers > 0);
  (* Beyond the computed depth: empty, no exception. *)
  let beyond = Precharac.level pre (Precharac.depth pre + 5) in
  Alcotest.(check int) "beyond depth empty" 0 (Array.length beyond.Fmc_netlist.Unroll.gates)

let test_precharac_correlation_bounds () =
  let pre = Experiments.precharac (Lazy.force ctx) in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  Array.iter
    (fun g ->
      let c = Precharac.correlation pre g ~shift:1 in
      Alcotest.(check bool) "corr in [0,1]" true (c >= 0. && c <= 1.))
    (Array.sub (N.gates net) 0 200)

let test_precharac_memory_classification () =
  let pre = Experiments.precharac (Lazy.force ctx) in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let mem = Precharac.memory_type_registers pre in
  Alcotest.(check bool) "some memory-type registers" true (Array.length mem > 10);
  Alcotest.(check bool) "not all registers" true (Array.length mem < Array.length (N.dffs net));
  (* All memory-type registers are cone registers. *)
  let cone = Precharac.cone_registers pre in
  Alcotest.(check bool) "memory-type subset of cone" true
    (Array.for_all (fun r -> Array.mem r cone) mem);
  (* pc changes every cycle: must be computation-type. *)
  let pc0 = (N.register_group net "pc").(0) in
  Alcotest.(check bool) "pc bit 0 is computation-type" false (Precharac.memory_type pre pc0)

let test_precharac_gate_lifetime () =
  let pre = Experiments.precharac (Lazy.force ctx) in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  Array.iter
    (fun g -> Alcotest.(check bool) "lifetime >= 0" true (Precharac.gate_lifetime pre g >= 0.))
    (N.gates net);
  (* A register's gate-lifetime is its own measured lifetime. *)
  let lt = Precharac.lifetimes pre in
  Array.iter
    (fun d ->
      Alcotest.(check (float 1e-9)) "dff lifetime consistent" (Lifetime.lifetime lt d)
        (Precharac.gate_lifetime pre d))
    (Precharac.cone_registers pre)

let test_lifetime_statistics_sane () =
  let pre = Experiments.precharac (Lazy.force ctx) in
  let stats = Lifetime.all (Precharac.lifetimes pre) in
  Alcotest.(check bool) "characterized registers" true (Array.length stats > 100);
  Array.iter
    (fun (s : Lifetime.stats) ->
      Alcotest.(check bool) "lifetime positive" true (s.Lifetime.lifetime >= 1.);
      Alcotest.(check bool) "lifetime capped" true (s.Lifetime.lifetime <= 200.);
      Alcotest.(check bool) "contamination non-negative" true (s.Lifetime.contamination >= 0.))
    stats

(* ------------------------------------------------------------------ *)
(* Sampler *)

let prepare strategy =
  let e = engine () in
  Sampler.prepare ~static_vuln:(Engine.static_vulnerable e) strategy (attack ())
    (Experiments.precharac (Lazy.force ctx))
    ~placement:(placement ())

let test_sampler_random_draws () =
  let prep = prepare Sampler.Random in
  let rng = Rng.create 3 in
  let block = Attack.spatial_cells (attack ()).Attack.spatial in
  for _ = 1 to 200 do
    let s = Sampler.draw prep rng in
    Alcotest.(check bool) "t in window" true (s.Sampler.t >= 0 && s.Sampler.t <= 49);
    Alcotest.(check bool) "center in block" true (Array.mem s.Sampler.center block);
    Alcotest.(check (float 1e-9)) "weight 1" 1. s.Sampler.weight;
    Alcotest.(check bool) "stratum all" true (s.Sampler.stratum = Sampler.All)
  done

let test_sampler_temporal_pmf_normalized () =
  List.iter
    (fun strat ->
      let prep = prepare strat in
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. (Sampler.temporal_pmf prep) in
      Alcotest.(check (float 1e-6)) (Sampler.strategy_name strat ^ " g_T sums to 1") 1. total)
    [ Sampler.Random; Sampler.Fanin_cone; Sampler.default_importance; Sampler.default_mixed ]

let test_sampler_weights_positive () =
  List.iter
    (fun strat ->
      let prep = prepare strat in
      let rng = Rng.create 5 in
      for _ = 1 to 300 do
        let s = Sampler.draw prep rng in
        Alcotest.(check bool) "weight positive and finite" true
          (s.Sampler.weight > 0. && Float.is_finite s.Sampler.weight)
      done)
    [ Sampler.Fanin_cone; Sampler.default_importance; Sampler.default_mixed ]

let test_sampler_strata () =
  let prep = prepare Sampler.default_mixed in
  let strata = Sampler.strata prep in
  Alcotest.(check int) "two strata" 2 (List.length strata);
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0. strata in
  Alcotest.(check (float 1e-9)) "masses sum to 1" 1. total;
  let mv = List.assoc Sampler.Vulnerable strata in
  Alcotest.(check bool) "vulnerable stratum non-trivial" true (mv > 0. && mv < 0.5);
  let prep = prepare Sampler.Random in
  Alcotest.(check bool) "random single stratum" true (Sampler.strata prep = [ (Sampler.All, 1.) ])

let test_sampler_sample_space_reduction () =
  let random_space = Sampler.sample_space_size (prepare Sampler.Random) in
  let cone_space = Sampler.sample_space_size (prepare Sampler.Fanin_cone) in
  Alcotest.(check bool) "cone space not larger" true (cone_space <= random_space)

let test_sampler_mixed_stratum_tags () =
  let prep = prepare Sampler.default_mixed in
  let rng = Rng.create 9 in
  let v = ref 0 and r = ref 0 in
  for _ = 1 to 400 do
    match (Sampler.draw prep rng).Sampler.stratum with
    | Sampler.Vulnerable -> incr v
    | Sampler.Rest -> incr r
    | Sampler.All -> Alcotest.fail "mixed draw tagged All"
  done;
  (* Allocation is 0.5: both strata sampled in fair proportion. *)
  Alcotest.(check bool) "both strata drawn" true (!v > 100 && !r > 100)

(* ------------------------------------------------------------------ *)
(* Analytical *)

let test_analytical () =
  let program = Programs.illegal_write in
  let base = Golden.state_at (Engine.golden (engine ())) (Golden.target_cycle (Engine.golden (engine ()))) in
  Alcotest.(check bool) "golden config denies" false
    (Analytical.evaluate ~program ~corrupted:base);
  (* Widen region 0's limit over the secret: grants the write. *)
  let wide = Arch.copy base in
  wide.Arch.mpu_limit.(0) <- wide.Arch.mpu_limit.(0) lor 0x200;
  Alcotest.(check bool) "widened limit grants" true (Analytical.evaluate ~program ~corrupted:wide);
  (* But breaking the exec region defeats the attack. *)
  let broken = Arch.copy wide in
  broken.Arch.mpu_ctrl.(1) <- 0;
  Alcotest.(check bool) "broken exec region fails" false
    (Analytical.evaluate ~program ~corrupted:broken);
  (* No metadata: never succeeds. *)
  Alcotest.(check bool) "synthetic has no attack" false
    (Analytical.evaluate ~program:Programs.synthetic ~corrupted:wide)

let test_static_vulnerable () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let vuln = Engine.static_vulnerable e in
  (* mode bit: privilege escalation. *)
  Alcotest.(check bool) "mode bit vulnerable" true (vuln (N.register_group net "mode").(0));
  (* limit0 high bits widen region 0 over the secret (0x300). *)
  Alcotest.(check bool) "limit0 bit 9 vulnerable" true (vuln (N.register_group net "mpu_limit0").(9));
  (* limit0 low bit cannot reach the secret. *)
  Alcotest.(check bool) "limit0 bit 0 not vulnerable" false (vuln (N.register_group net "mpu_limit0").(0));
  (* A register-file scratch register is not decisive. *)
  Alcotest.(check bool) "reg4 bit 3 not vulnerable" false (vuln (N.register_group net "reg4").(3))

(* ------------------------------------------------------------------ *)
(* Engine *)

let mk_sample ?(t = 5) ?(radius = 0.3) ?(width = 200.) ?(time_frac = 0.5) center =
  {
    Sampler.t;
    center;
    radius;
    width;
    time_frac;
    weight = 1.;
    stratum = Sampler.All;
  }

let test_engine_direct_vulnerable_flip_succeeds () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let rng = Rng.create 4 in
  (* Radius below the cell pitch: exactly the center flips. Flipping
     limit0[9] widens region 0 over the secret; it persists, so the attack
     must succeed at any positive timing distance. *)
  let dff = (N.register_group net "mpu_limit0").(9) in
  let r = Engine.run_sample e rng (mk_sample ~t:7 dff) in
  Alcotest.(check bool) "success" true r.Engine.success;
  Alcotest.(check (list (pair string int))) "flips" [ ("mpu_limit0", 9) ] r.Engine.flips;
  Alcotest.(check int) "one direct hit" 1 (Array.length r.Engine.direct)

let test_engine_benign_flip_fails () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let rng = Rng.create 4 in
  (* reg0 is unused by the benchmark: flipping it changes nothing
     observable. *)
  let dff = (N.register_group net "reg0").(2) in
  let r = Engine.run_sample e rng (mk_sample ~t:3 dff) in
  Alcotest.(check bool) "no success" false r.Engine.success;
  Alcotest.(check bool) "flip recorded" true (List.mem ("reg0", 2) r.Engine.flips)

let test_engine_past_target_fails () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let rng = Rng.create 4 in
  (* Negative timing distance: injection after the target cycle; even the
     decisive bit cannot help anymore. *)
  let dff = (N.register_group net "mpu_limit0").(9) in
  let r = Engine.run_sample e rng (mk_sample ~t:(-3) dff) in
  Alcotest.(check bool) "late shot fails" false r.Engine.success

let test_engine_te_before_reset_masked () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let rng = Rng.create 4 in
  let dff = (N.register_group net "mpu_limit0").(9) in
  let tt = Golden.target_cycle (Engine.golden e) in
  let r = Engine.run_sample e rng (mk_sample ~t:(tt + 10) dff) in
  Alcotest.(check bool) "before reset masked" true (r.Engine.outcome = Engine.Masked)

let test_engine_deterministic () =
  let e = engine () in
  let prep = prepare Sampler.Random in
  let run () =
    let rng = Rng.create 31 in
    List.init 50 (fun _ ->
        let s = Sampler.draw prep rng in
        (Engine.run_sample e rng s).Engine.success)
  in
  Alcotest.(check (list bool)) "same seed, same outcomes" (run ()) (run ())

let test_engine_hardening_blocks_flips () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let dff = (N.register_group net "mpu_limit0").(9) in
  let rng = Rng.create 77 in
  (* With resilience ~infinity every flip on the hardened register dies. *)
  let survived = ref 0 in
  for _ = 1 to 50 do
    let r =
      Engine.run_sample e ~hardened:(fun d -> d = dff) ~resilience:1e12 rng (mk_sample ~t:4 dff)
    in
    if r.Engine.success then incr survived
  done;
  Alcotest.(check int) "all blocked" 0 !survived

let test_engine_cell_filter () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let rng = Rng.create 5 in
  let dff = (N.register_group net "mpu_limit0").(9) in
  (* Filtering out sequential cells turns the same strike into a no-op. *)
  let keep_comb c = match N.kind net c with K.Gate _ -> true | _ -> false in
  let r = Engine.run_sample e ~cell_filter:keep_comb rng (mk_sample ~t:4 dff) in
  Alcotest.(check int) "no direct hits" 0 (Array.length r.Engine.direct)

let test_engine_gate_flips_only () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let rng = Rng.create 6 in
  let dff = (N.register_group net "mode").(0) in
  let latched, direct = Engine.gate_flips_only e rng (mk_sample ~t:2 dff) in
  Alcotest.(check (array int)) "direct is the struck dff" [| dff |] direct;
  ignore latched

let test_engine_exec_benchmark () =
  (* The framework on the third policy: widening the exec region (limit1
     high bits) or escalating privilege (mode) defeats the fetch check. *)
  let e = Experiments.engine_for (Lazy.force ctx) Programs.illegal_exec in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let vuln = Engine.static_vulnerable e in
  Alcotest.(check bool) "mode vulnerable" true (vuln (N.register_group net "mode").(0));
  Alcotest.(check bool) "limit1 high bit vulnerable" true
    (vuln (N.register_group net "mpu_limit1").(15));
  Alcotest.(check bool) "limit0 not decisive here" false
    (vuln (N.register_group net "mpu_limit0").(9));
  let rng = Rng.create 3 in
  let r = Engine.run_sample e rng (mk_sample ~t:6 (N.register_group net "mpu_limit1").(15)) in
  Alcotest.(check bool) "exec-region widening succeeds" true r.Engine.success

let test_engine_multi_cycle_impact () =
  let e = engine () in
  let prep = prepare Sampler.Random in
  (* Sustained strikes can only add register errors, and SSF grows with the
     impact window (statistically; check on a fixed seed batch). *)
  let count k =
    let rng = Rng.create 41 in
    let succ = ref 0 in
    for _ = 1 to 400 do
      let s = Sampler.draw prep rng in
      let r = Engine.run_sample e ~impact_cycles:k rng s in
      if r.Engine.success then incr succ
    done;
    !succ
  in
  let one = count 1 and three = count 3 in
  Alcotest.(check bool)
    (Printf.sprintf "3-cycle impact (%d) >= 1-cycle (%d)" three one)
    true (three >= one);
  Alcotest.check_raises "bad impact" (Invalid_argument "Engine.run_sample: impact_cycles must be >= 1")
    (fun () ->
      let rng = Rng.create 1 in
      ignore (Engine.run_sample e ~impact_cycles:0 rng (Sampler.draw prep rng)))

let test_engine_glitch () =
  let e = engine () in
  let tt = Golden.target_cycle (Engine.golden e) in
  let critical = Engine.glitch_critical_path e in
  (* A period above the critical path never violates anything. *)
  let r = Engine.run_glitch e ~te:(tt - 3) ~period:(critical +. 100.) in
  Alcotest.(check (list (pair string int))) "no stale bits" [] r.Engine.g_stale;
  Alcotest.(check bool) "harmless" false r.Engine.g_success;
  (* A deep glitch catches the long paths (stale bits appear); determinism. *)
  let a = Engine.run_glitch e ~te:(tt - 3) ~period:(0.6 *. critical) in
  let b = Engine.run_glitch e ~te:(tt - 3) ~period:(0.6 *. critical) in
  Alcotest.(check bool) "deterministic" true (a = b);
  (* te before reset: no-op. *)
  let r = Engine.run_glitch e ~te:0 ~period:(0.5 *. critical) in
  Alcotest.(check bool) "pre-reset no-op" false r.Engine.g_success

let engine_props =
  let prep = lazy (prepare Sampler.Random) in
  [
    QCheck.Test.make ~name:"masked runs never succeed; te = Tt - t" ~count:60
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let e = engine () in
        let rng = Rng.create seed in
        let s = Sampler.draw (Lazy.force prep) rng in
        let r = Engine.run_sample e rng s in
        let tt = Golden.target_cycle (Engine.golden e) in
        r.Engine.te = tt - s.Sampler.t
        && (match r.Engine.outcome with
           | Engine.Masked -> (not r.Engine.success) && r.Engine.flips = []
           | Engine.Analytical b | Engine.Resumed b -> b = r.Engine.success));
    QCheck.Test.make ~name:"success implies an architectural or memory effect" ~count:60
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let e = engine () in
        let rng = Rng.create seed in
        let s = Sampler.draw (Lazy.force prep) rng in
        let r = Engine.run_sample e rng s in
        (* A successful attack cannot come out of a masked cycle. *)
        (not r.Engine.success) || r.Engine.outcome <> Engine.Masked);
    QCheck.Test.make ~name:"causal flips are a subset of flips" ~count:40
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let e = engine () in
        let rng = Rng.create seed in
        let s = Sampler.draw (Lazy.force prep) rng in
        let r = Engine.run_sample e rng s in
        let causal = Engine.causal_flips e r in
        List.for_all (fun f -> List.mem f r.Engine.flips) causal
        && ((not r.Engine.success) || causal <> []));
  ]

(* ------------------------------------------------------------------ *)
(* Ssf *)

let test_ssf_deterministic () =
  let e = engine () in
  let prep = prepare Sampler.Random in
  let a = Ssf.estimate e prep ~samples:300 ~seed:5 in
  let b = Ssf.estimate e prep ~samples:300 ~seed:5 in
  Alcotest.(check (float 1e-12)) "same ssf" a.Ssf.ssf b.Ssf.ssf;
  Alcotest.(check (float 1e-12)) "same variance" a.Ssf.variance b.Ssf.variance;
  Alcotest.(check int) "same successes" a.Ssf.successes b.Ssf.successes

let test_ssf_bookkeeping () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let r = Ssf.estimate e prep ~samples:400 ~seed:5 in
  Alcotest.(check int) "outcomes sum to n" 400
    (r.Ssf.outcomes.Ssf.masked + r.Ssf.outcomes.Ssf.mem_only + r.Ssf.outcomes.Ssf.resumed);
  Alcotest.(check int) "success split" r.Ssf.successes (r.Ssf.success_by_direct + r.Ssf.success_by_comb);
  Alcotest.(check bool) "ssf in [0,1]" true (r.Ssf.ssf >= 0. && r.Ssf.ssf <= 1.);
  Alcotest.(check bool) "trace ends at n" true
    (match List.rev r.Ssf.trace with (n, _) :: _ -> n = 400 | [] -> false);
  (* Contributions are positive and sorted descending. *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "contributions sorted" true (sorted r.Ssf.contributions);
  List.iter (fun (_, w) -> Alcotest.(check bool) "positive" true (w > 0.)) r.Ssf.contributions

let test_ssf_estimates_agree_across_strategies () =
  (* Unbiasedness smoke test: all strategies estimate the same quantity. *)
  let e = engine () in
  let estimates =
    List.map
      (fun strat ->
        let prep = prepare strat in
        (Ssf.estimate e prep ~samples:3000 ~seed:17).Ssf.ssf)
      [ Sampler.Random; Sampler.default_mixed ]
  in
  match estimates with
  | [ a; b ] ->
      Alcotest.(check bool)
        (Printf.sprintf "random %.4f vs mixed %.4f within 3 sigma" a b)
        true
        (abs_float (a -. b) < 0.012)
  | _ -> assert false

let test_ssf_effective_sample_size () =
  let e = engine () in
  (* Plain Monte Carlo: ESS equals n exactly (all weights are 1). *)
  let r = Ssf.estimate ~causal:false e (prepare Sampler.Random) ~samples:500 ~seed:5 in
  Alcotest.(check (float 1e-6)) "random ESS = n" 500. r.Ssf.ess;
  (* Weighted strategies: 0 < ESS <= n. *)
  let r = Ssf.estimate ~causal:false e (prepare Sampler.default_mixed) ~samples:500 ~seed:5 in
  Alcotest.(check bool) "mixed ESS in (0, n]" true (r.Ssf.ess > 0. && r.Ssf.ess <= 500.)

let test_ssf_confidence_interval () =
  let e = engine () in
  let prep = prepare Sampler.Random in
  let r = Ssf.estimate e prep ~samples:2000 ~seed:5 in
  let lo, hi = Ssf.confidence_interval r ~z:1.96 in
  Alcotest.(check bool) "estimate inside" true (lo <= r.Ssf.ssf && r.Ssf.ssf <= hi);
  Alcotest.(check bool) "clamped" true (lo >= 0. && hi <= 1.);
  let lo99, hi99 = Ssf.confidence_interval r ~z:2.58 in
  Alcotest.(check bool) "wider at higher z" true (hi99 -. lo99 >= hi -. lo)

let test_ssf_estimate_until () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let r = Ssf.estimate_until ~causal:false e prep ~half_width:0.01 ~z:1.96 ~seed:5 in
  let lo, hi = Ssf.confidence_interval r ~z:1.96 in
  Alcotest.(check bool) "target met" true ((hi -. lo) /. 2. <= 0.01 || r.Ssf.n >= 200_000);
  Alcotest.(check bool) "took some samples" true (r.Ssf.n >= 500);
  Alcotest.check_raises "bad half width"
    (Invalid_argument "Ssf.estimate_until: non-positive half_width") (fun () ->
      ignore (Ssf.estimate_until e prep ~half_width:0. ~z:1.96 ~seed:1))

let test_ssf_parallel () =
  let prep = prepare Sampler.default_mixed in
  (* Each domain needs a private engine (mutable simulator state). *)
  let factory () =
    Engine.create ~precharac:(Experiments.precharac (Lazy.force ctx)) Programs.illegal_write
  in
  let a = Ssf.estimate_parallel ~domains:2 ~causal:false ~engine_factory:factory prep ~samples:1200 ~seed:5 in
  let b = Ssf.estimate_parallel ~domains:2 ~causal:false ~engine_factory:factory prep ~samples:1200 ~seed:5 in
  Alcotest.(check int) "all samples taken" 1200 a.Ssf.n;
  Alcotest.(check (float 1e-12)) "deterministic" a.Ssf.ssf b.Ssf.ssf;
  Alcotest.(check int) "outcomes sum" 1200
    (a.Ssf.outcomes.Ssf.masked + a.Ssf.outcomes.Ssf.mem_only + a.Ssf.outcomes.Ssf.resumed);
  (* Agrees with the sequential estimator within joint 3-sigma. *)
  let e = engine () in
  let s = Ssf.estimate ~causal:false e prep ~samples:1200 ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "parallel %.4f vs sequential %.4f" a.Ssf.ssf s.Ssf.ssf)
    true
    (abs_float (a.Ssf.ssf -. s.Ssf.ssf) < 0.02)

let test_ssf_contribution_coverage () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let r = Ssf.estimate e prep ~samples:800 ~seed:5 in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. r.Ssf.contributions in
  let prefix = Ssf.contribution_coverage r ~fraction:0.9 in
  let covered = List.fold_left (fun acc (_, w) -> acc +. w) 0. prefix in
  Alcotest.(check bool) "prefix covers 90%" true (covered >= (0.9 *. total) -. 1e-9);
  Alcotest.(check bool) "prefix minimal-ish" true (List.length prefix <= List.length r.Ssf.contributions);
  let all = Ssf.contribution_coverage r ~fraction:1.0 in
  Alcotest.(check int) "full coverage takes all" (List.length r.Ssf.contributions) (List.length all)

let test_export_csv_and_json () =
  let e = engine () in
  let prep = prepare Sampler.Random in
  let r = Ssf.estimate e prep ~samples:300 ~seed:5 in
  let trace = Export.trace_csv r in
  Alcotest.(check bool) "trace header" true (String.length trace > 12 && String.sub trace 0 11 = "samples,ssf");
  Alcotest.(check int) "one row per trace point plus header"
    (List.length r.Ssf.trace + 1)
    (List.length (String.split_on_char '
' (String.trim trace)));
  let contrib = Export.contributions_csv r in
  Alcotest.(check bool) "contrib header" true (String.sub contrib 0 19 = "register,bit,weight");
  let json = Export.report_json r in
  Alcotest.(check bool) "json braces" true (json.[0] = '{' && json.[String.length json - 1] = '}');
  Alcotest.(check bool) "json has strategy" true
    (let needle = "\"strategy\":\"random\"" in
     let rec go i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle || go (i + 1))
     in
     go 0)

(* ------------------------------------------------------------------ *)
(* Harden *)

let test_harden_critical_registers () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let prep = prepare Sampler.default_mixed in
  let r = Ssf.estimate e prep ~samples:1500 ~seed:5 in
  let crit = Harden.critical_registers net r ~coverage:0.95 in
  Alcotest.(check bool) "non-empty" true (Array.length crit > 0);
  Alcotest.(check bool) "small subset" true (Array.length crit < Array.length (N.dffs net) / 4);
  (* Each critical register is a real flip-flop node. *)
  Array.iter
    (fun d ->
      match N.kind net d with
      | K.Dff _ -> ()
      | _ -> Alcotest.fail "critical register is not a flip-flop")
    crit

let test_harden_evaluate () =
  let e = engine () in
  let net = (Experiments.circuit (Lazy.force ctx)).Circuit.net in
  let prep = prepare Sampler.default_mixed in
  let pilot = Ssf.estimate e prep ~samples:1500 ~seed:5 in
  let plan = Harden.default_plan net pilot ~coverage:0.9 in
  let ev = Harden.evaluate e prep ~plan ~samples:1500 ~seed:6 in
  Alcotest.(check bool) "hardening reduces ssf" true
    (ev.Harden.hardened.Ssf.ssf <= ev.Harden.baseline.Ssf.ssf +. 0.005);
  Alcotest.(check bool) "positive overhead" true (ev.Harden.area_overhead > 0.);
  Alcotest.(check bool) "overhead small" true (ev.Harden.area_overhead < 0.2);
  Alcotest.(check bool) "fraction consistent" true
    (abs_float
       (ev.Harden.register_fraction
       -. (float_of_int (Array.length plan.Harden.registers) /. float_of_int (Array.length (N.dffs net))))
    < 1e-9)

(* ------------------------------------------------------------------ *)
(* Experiments + Report *)

let test_experiments_fig4 () =
  let f = Experiments.fig4 (Lazy.force ctx) in
  let total h = Array.fold_left (fun acc (_, p) -> acc +. p) 0. h in
  Alcotest.(check (float 1e-6)) "lifetime hist normalized" 1. (total f.Experiments.lifetime_hist);
  Alcotest.(check (float 1e-6)) "contamination hist normalized" 1.
    (total f.Experiments.contamination_hist);
  Alcotest.(check bool) "memory fraction in (0,1)" true
    (f.Experiments.memory_fraction > 0. && f.Experiments.memory_fraction < 1.)

let test_experiments_fig8 () =
  let f = Experiments.fig8 (Lazy.force ctx) in
  let gt = List.fold_left (fun acc (_, p) -> acc +. p) 0. f.Experiments.g_t in
  Alcotest.(check (float 1e-6)) "g_T normalized" 1. gt;
  List.iter
    (fun (_, total, cone, comp) ->
      Alcotest.(check bool) "cone <= total" true (cone <= total);
      Alcotest.(check bool) "comp <= cone" true (comp <= cone))
    f.Experiments.per_depth

let test_experiments_fig9_small () =
  let f = Experiments.fig9 ~samples:400 ~seed:3 (Lazy.force ctx) in
  Alcotest.(check (list string)) "strategies" [ "random"; "fanin-cone"; "mixed" ]
    (List.map (fun (r : Experiments.fig9_row) -> r.Experiments.strategy) f.Experiments.rows);
  List.iter
    (fun (r : Experiments.fig9_row) ->
      Alcotest.(check bool) "ssf sane" true (r.Experiments.ssf >= 0. && r.Experiments.ssf <= 1.))
    f.Experiments.rows;
  Alcotest.(check int) "speedups for each row" 3 (List.length f.Experiments.speedup_vs_random)

let test_report_printers_non_empty () =
  let c = Lazy.force ctx in
  let render pp v = Format.asprintf "%a" pp v in
  Alcotest.(check bool) "fig4" true (String.length (render Report.fig4 (Experiments.fig4 c)) > 100);
  Alcotest.(check bool) "fig8" true (String.length (render Report.fig8 (Experiments.fig8 c)) > 100);
  let f9 = Experiments.fig9 ~samples:300 ~seed:3 c in
  Alcotest.(check bool) "fig9" true (String.length (render Report.fig9 f9) > 100);
  Alcotest.(check bool) "bar clamps" true (String.length (Report.bar 2.0) = 40);
  Alcotest.(check int) "bar zero" 0 (String.length (Report.bar (-1.)))

let () =
  Alcotest.run "core"
    [
      ( "dist",
        [
          Alcotest.test_case "uniform" `Quick test_dist_uniform;
          Alcotest.test_case "delta and discrete" `Quick test_dist_delta_and_discrete;
          Alcotest.test_case "float" `Quick test_dist_float;
        ] );
      ( "attack",
        [
          Alcotest.test_case "block_around" `Slow test_attack_block_around;
          Alcotest.test_case "pmf_spatial" `Quick test_attack_pmf_spatial;
          Alcotest.test_case "validate" `Slow test_attack_validate;
        ] );
      ( "golden",
        [
          Alcotest.test_case "target cycle" `Quick test_golden_target_cycle;
          Alcotest.test_case "restore_at" `Quick test_golden_restore_at;
          Alcotest.test_case "observables" `Quick test_golden_observables;
          Alcotest.test_case "broken benchmark rejected" `Quick test_golden_broken_benchmark;
        ] );
      ( "precharac",
        [
          Alcotest.test_case "cone levels" `Slow test_precharac_levels;
          Alcotest.test_case "correlation bounds" `Slow test_precharac_correlation_bounds;
          Alcotest.test_case "memory classification" `Slow test_precharac_memory_classification;
          Alcotest.test_case "gate lifetimes" `Slow test_precharac_gate_lifetime;
          Alcotest.test_case "lifetime statistics" `Slow test_lifetime_statistics_sane;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "random draws" `Slow test_sampler_random_draws;
          Alcotest.test_case "temporal pmf normalized" `Slow test_sampler_temporal_pmf_normalized;
          Alcotest.test_case "weights positive" `Slow test_sampler_weights_positive;
          Alcotest.test_case "strata masses" `Slow test_sampler_strata;
          Alcotest.test_case "sample-space reduction" `Slow test_sampler_sample_space_reduction;
          Alcotest.test_case "mixed stratum tags" `Slow test_sampler_mixed_stratum_tags;
        ] );
      ( "analytical",
        [
          Alcotest.test_case "config evaluation" `Slow test_analytical;
          Alcotest.test_case "static vulnerability scan" `Slow test_static_vulnerable;
        ] );
      ( "engine",
        [
          Alcotest.test_case "vulnerable flip succeeds" `Slow test_engine_direct_vulnerable_flip_succeeds;
          Alcotest.test_case "benign flip fails" `Slow test_engine_benign_flip_fails;
          Alcotest.test_case "late shot fails" `Slow test_engine_past_target_fails;
          Alcotest.test_case "pre-reset masked" `Slow test_engine_te_before_reset_masked;
          Alcotest.test_case "deterministic" `Slow test_engine_deterministic;
          Alcotest.test_case "hardening blocks flips" `Slow test_engine_hardening_blocks_flips;
          Alcotest.test_case "cell filter" `Slow test_engine_cell_filter;
          Alcotest.test_case "gate_flips_only" `Slow test_engine_gate_flips_only;
          Alcotest.test_case "clock glitch" `Slow test_engine_glitch;
          Alcotest.test_case "illegal-exec policy" `Slow test_engine_exec_benchmark;
          Alcotest.test_case "multi-cycle impact" `Slow test_engine_multi_cycle_impact;
        ] );
      ( "ssf",
        [
          Alcotest.test_case "deterministic" `Slow test_ssf_deterministic;
          Alcotest.test_case "bookkeeping" `Slow test_ssf_bookkeeping;
          Alcotest.test_case "strategies agree" `Slow test_ssf_estimates_agree_across_strategies;
          Alcotest.test_case "confidence interval" `Slow test_ssf_confidence_interval;
          Alcotest.test_case "effective sample size" `Slow test_ssf_effective_sample_size;
          Alcotest.test_case "estimate until convergence" `Slow test_ssf_estimate_until;
          Alcotest.test_case "parallel estimation" `Slow test_ssf_parallel;
          Alcotest.test_case "contribution coverage" `Slow test_ssf_contribution_coverage;
        ] );
      ("engine-props", List.map QCheck_alcotest.to_alcotest engine_props);
      ("export", [ Alcotest.test_case "csv and json" `Slow test_export_csv_and_json ]);
      ( "harden",
        [
          Alcotest.test_case "critical registers" `Slow test_harden_critical_registers;
          Alcotest.test_case "evaluate" `Slow test_harden_evaluate;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig4 data" `Slow test_experiments_fig4;
          Alcotest.test_case "fig8 data" `Slow test_experiments_fig8;
          Alcotest.test_case "fig9 small" `Slow test_experiments_fig9_small;
          Alcotest.test_case "report printers" `Slow test_report_printers_non_empty;
        ] );
    ]
