(* Tests for the processor: model semantics per instruction, MPU/trap
   behavior, benchmark golden runs, and — the keystone of the cross-level
   framework — bit-exact RTL-vs-gate co-simulation. *)

module Isa = Fmc_isa.Isa
module Asm = Fmc_isa.Asm
module Programs = Fmc_isa.Programs
module Arch = Fmc_cpu.Arch
module Model = Fmc_cpu.Model
module System = Fmc_cpu.System
module Circuit = Fmc_cpu.Circuit
module Netsys = Fmc_cpu.Netsys
module Rng = Fmc_prelude.Rng

let circuit = lazy (Circuit.build ())

(* Run a raw instruction list on a fresh model with trivial memory. *)
let run_program ?(dmem_size = 64) instrs =
  let imem = Array.map Isa.encode (Array.of_list instrs) in
  let dmem = Array.make dmem_size 0 in
  let st = Arch.create () in
  let fetch pc = if pc < Array.length imem then imem.(pc) else 0 in
  let load a = dmem.(a land (dmem_size - 1)) in
  let store a v = dmem.(a land (dmem_size - 1)) <- v in
  let steps = ref 0 in
  while (not st.Arch.halted) && !steps < 500 do
    ignore (Model.step st ~fetch ~load ~store);
    incr steps
  done;
  (st, dmem)

(* ------------------------------------------------------------------ *)
(* Arch *)

let test_arch_groups_roundtrip () =
  let st = Arch.create () in
  List.iter
    (fun (name, width) ->
      let v = (0xABCD land ((1 lsl width) - 1)) lxor 1 in
      Arch.set_group st name v;
      Alcotest.(check int) name v (Arch.get_group st name))
    Arch.groups

let test_arch_reset_values () =
  let st = Arch.create () in
  Alcotest.(check int) "pc" 0 st.Arch.pc;
  Alcotest.(check int) "mode privileged" 1 st.Arch.mode;
  Alcotest.(check bool) "not halted" false st.Arch.halted

let test_arch_total_bits () =
  (* 16 pc + 8*16 regs + 1 + 16 epc + 2 cause + 1 halted + 2*(16+16+4) mpu *)
  Alcotest.(check int) "bits" (16 + 128 + 1 + 16 + 2 + 1 + 72) Arch.total_bits

let test_arch_diff () =
  let a = Arch.create () and b = Arch.create () in
  Alcotest.(check (list string)) "equal" [] (Arch.diff a b);
  b.Arch.pc <- 5;
  b.Arch.regs.(3) <- 7;
  Alcotest.(check (list string)) "differs" [ "pc"; "reg3" ] (Arch.diff a b)

let test_mpu_allows () =
  let st = Arch.create () in
  st.Arch.mpu_base.(0) <- 0x100;
  st.Arch.mpu_limit.(0) <- 0x1ff;
  st.Arch.mpu_ctrl.(0) <- Isa.ctrl_enable lor Isa.ctrl_read;
  Alcotest.(check bool) "read inside" true (Arch.mpu_allows st ~addr:0x150 ~perm:Arch.Read);
  Alcotest.(check bool) "write inside denied" false (Arch.mpu_allows st ~addr:0x150 ~perm:Arch.Write);
  Alcotest.(check bool) "below range" false (Arch.mpu_allows st ~addr:0xff ~perm:Arch.Read);
  Alcotest.(check bool) "above range" false (Arch.mpu_allows st ~addr:0x200 ~perm:Arch.Read);
  Alcotest.(check bool) "boundary base" true (Arch.mpu_allows st ~addr:0x100 ~perm:Arch.Read);
  Alcotest.(check bool) "boundary limit" true (Arch.mpu_allows st ~addr:0x1ff ~perm:Arch.Read);
  st.Arch.mpu_ctrl.(0) <- Isa.ctrl_read;
  Alcotest.(check bool) "disabled region" false (Arch.mpu_allows st ~addr:0x150 ~perm:Arch.Read);
  (* Second region. *)
  st.Arch.mpu_base.(1) <- 0x0;
  st.Arch.mpu_limit.(1) <- 0xf;
  st.Arch.mpu_ctrl.(1) <- Isa.ctrl_enable lor Isa.ctrl_exec;
  Alcotest.(check bool) "region 1 exec" true (Arch.mpu_allows st ~addr:3 ~perm:Arch.Exec);
  (* Privileged mode bypasses. *)
  Alcotest.(check bool) "privileged" true (Arch.access_allowed st ~addr:0x999 ~perm:Arch.Write);
  st.Arch.mode <- 0;
  Alcotest.(check bool) "user blocked" false (Arch.access_allowed st ~addr:0x999 ~perm:Arch.Write)

(* ------------------------------------------------------------------ *)
(* Model instruction semantics *)

let test_model_alu () =
  let st, _ =
    run_program
      [
        Isa.Ldi (1, 200);
        Isa.Ldi (2, 45);
        Isa.Add (3, 1, 2);
        Isa.Sub (4, 1, 2);
        Isa.And_ (5, 1, 2);
        Isa.Or_ (6, 1, 2);
        Isa.Xor_ (7, 1, 2);
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "add" 245 st.Arch.regs.(3);
  Alcotest.(check int) "sub" 155 st.Arch.regs.(4);
  Alcotest.(check int) "and" (200 land 45) st.Arch.regs.(5);
  Alcotest.(check int) "or" (200 lor 45) st.Arch.regs.(6);
  Alcotest.(check int) "xor" (200 lxor 45) st.Arch.regs.(7)

let test_model_wraparound () =
  let st, _ =
    run_program
      [ Isa.Ldi (1, 0); Isa.Lui (1, 0xff); Isa.Ldi (2, 0xff); Isa.Or_ (1, 1, 2); Isa.Ldi (3, 1); Isa.Add (4, 1, 3); Isa.Halt ]
  in
  Alcotest.(check int) "r1 = 0xffff" 0xffff st.Arch.regs.(1);
  Alcotest.(check int) "wraps to 0" 0 st.Arch.regs.(4)

let test_model_lui_keeps_low () =
  let st, _ = run_program [ Isa.Ldi (1, 0x34); Isa.Lui (1, 0x12); Isa.Halt ] in
  Alcotest.(check int) "lui" 0x1234 st.Arch.regs.(1)

let test_model_shifts () =
  let st, _ =
    run_program
      [
        Isa.Ldi (1, 0x81);
        Isa.Ldi (2, 4);
        Isa.Shl (3, 1, 2);
        Isa.Shr (4, 1, 2);
        Isa.Ldi (5, 31);  (* shift amount masked to 15 *)
        Isa.Shl (6, 1, 5);
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "shl" 0x810 st.Arch.regs.(3);
  Alcotest.(check int) "shr" 0x8 st.Arch.regs.(4);
  Alcotest.(check int) "shift masked" ((0x81 lsl 15) land 0xffff) st.Arch.regs.(6)

let test_model_load_store () =
  let st, dmem = run_program [ Isa.Ldi (1, 10); Isa.Ldi (2, 0xCD); Isa.St (2, 1, 3); Isa.Ld (3, 1, 3); Isa.Halt ] in
  Alcotest.(check int) "stored" 0xCD dmem.(13);
  Alcotest.(check int) "loaded" 0xCD st.Arch.regs.(3)

let test_model_branches () =
  let prog =
    [
      Asm.I (Isa.Ldi (1, 3));
      Asm.I (Isa.Ldi (2, 1));
      Asm.I (Isa.Ldi (3, 0));
      Asm.Label "loop";
      Asm.I (Isa.Add (3, 3, 1));
      Asm.I (Isa.Sub (1, 1, 2));
      Asm.Brnz_to (1, "loop");
      Asm.I Isa.Halt;
    ]
  in
  let imem = Asm.assemble prog in
  let st = Arch.create () in
  let fetch pc = if pc < Array.length imem then imem.(pc) else 0 in
  let steps = ref 0 in
  while (not st.Arch.halted) && !steps < 100 do
    ignore (Model.step st ~fetch ~load:(fun _ -> 0) ~store:(fun _ _ -> ()));
    incr steps
  done;
  Alcotest.(check int) "3+2+1" 6 st.Arch.regs.(3)

let test_model_jalr () =
  let st, _ = run_program [ Isa.Ldi (1, 4); Isa.Jalr (2, 1); Isa.Halt; Isa.Halt; Isa.Ldi (3, 9); Isa.Halt ] in
  Alcotest.(check int) "link" 2 st.Arch.regs.(2);
  Alcotest.(check int) "landed" 9 st.Arch.regs.(3)

let test_model_jalr_same_reg () =
  (* jalr r1, r1: target must be the OLD r1. *)
  let st, _ = run_program [ Isa.Ldi (1, 3); Isa.Jalr (1, 1); Isa.Halt; Isa.Ldi (4, 5); Isa.Halt ] in
  Alcotest.(check int) "landed at old r1" 5 st.Arch.regs.(4);
  Alcotest.(check int) "link written" 2 st.Arch.regs.(1)

let test_model_halt_freezes () =
  let st, _ = run_program [ Isa.Ldi (1, 1); Isa.Halt; Isa.Ldi (1, 99) ] in
  Alcotest.(check int) "no execution past halt" 1 st.Arch.regs.(1);
  Alcotest.(check int) "pc frozen at halt" 1 st.Arch.pc

let test_model_mpuw_and_priv_trap () =
  (* Privileged MPUW works; user-mode MPUW traps with cause_priv. *)
  let st, _ =
    run_program [ Isa.Ldi (1, 0x42); Isa.Mpuw (Isa.fld_base0, 1); Isa.Halt ]
  in
  Alcotest.(check int) "mpu base written" 0x42 st.Arch.mpu_base.(0);
  (* User-mode attempt: grant exec over the program, drop, then mpuw. *)
  let st, _ =
    run_program
      [
        Isa.Ldi (1, 0);
        Isa.Mpuw (Isa.fld_base1, 1);
        Isa.Ldi (1, 63);
        Isa.Mpuw (Isa.fld_limit1, 1);
        Isa.Ldi (1, Isa.ctrl_enable lor Isa.ctrl_exec);
        Isa.Mpuw (Isa.fld_ctrl1, 1);
        Isa.Retu;
        (* user mode from here *)
        Isa.Mpuw (Isa.fld_base0, 1);
        Isa.Halt;
      ]
  in
  (* Trap vector = 2 holds "ldi r1, 63" — harmless; execution continues
     privileged and eventually falls into the halt. *)
  Alcotest.(check int) "cause priv" Isa.cause_priv st.Arch.cause;
  Alcotest.(check int) "epc at offender" 7 st.Arch.epc;
  Alcotest.(check int) "mode back to privileged" 1 st.Arch.mode

let test_model_data_violation () =
  (* User can write inside the window, traps outside it. *)
  let st, dmem =
    run_program
      [
        Isa.Ldi (1, 16);
        Isa.Mpuw (Isa.fld_base0, 1);
        Isa.Ldi (1, 31);
        Isa.Mpuw (Isa.fld_limit0, 1);
        Isa.Ldi (1, Isa.ctrl_enable lor Isa.ctrl_read lor Isa.ctrl_write);
        Isa.Mpuw (Isa.fld_ctrl0, 1);
        Isa.Ldi (1, 0);
        Isa.Mpuw (Isa.fld_base1, 1);
        Isa.Ldi (1, 63);
        Isa.Mpuw (Isa.fld_limit1, 1);
        Isa.Ldi (1, Isa.ctrl_enable lor Isa.ctrl_exec);
        Isa.Mpuw (Isa.fld_ctrl1, 1);
        Isa.Retu;
        (* user mode *)
        Isa.Ldi (2, 20);
        Isa.Ldi (3, 0x77);
        Isa.St (3, 2, 0);  (* legal: addr 20 in [16,31] *)
        Isa.Ldi (2, 40);
        Isa.St (3, 2, 0);  (* illegal: addr 40 *)
        Isa.Halt;
      ]
  in
  Alcotest.(check int) "legal store done" 0x77 dmem.(20);
  Alcotest.(check int) "illegal store squashed" 0 dmem.(40);
  Alcotest.(check int) "cause data" Isa.cause_data st.Arch.cause;
  Alcotest.(check int) "trap pc target was vector" 1 st.Arch.mode

let test_model_instr_violation () =
  (* Drop to user with NO exec region: immediate instruction violation. *)
  let st, _ = run_program [ Isa.Retu; Isa.Halt ] in
  Alcotest.(check int) "cause instr" Isa.cause_instr st.Arch.cause;
  Alcotest.(check int) "epc" 1 st.Arch.epc

let test_model_trapret () =
  (* trapret returns to epc+1 in user mode. *)
  let st, _ =
    run_program
      [
        (* 0 *) Isa.Brz (0, 2);  (* skip over handler to boot *)
        (* 1 *) Isa.Halt;  (* unused *)
        (* 2 *) Isa.Trapret;  (* trap handler: skip offending instruction *)
        (* boot at 3 *)
        (* 3 *) Isa.Ldi (1, 4);
        (* 4 *) Isa.Mpuw (Isa.fld_base1, 1);
        (* 5 *) Isa.Ldi (1, 63);
        (* 6 *) Isa.Mpuw (Isa.fld_limit1, 1);
        (* 7 *) Isa.Ldi (1, Isa.ctrl_enable lor Isa.ctrl_exec);
        (* 8 *) Isa.Mpuw (Isa.fld_ctrl1, 1);
        (* 9 *) Isa.Retu;
        (* user from 10 *)
        (* 10 *) Isa.Ldi (2, 9);
        (* 11 *) Isa.Mpuw (Isa.fld_base0, 2);  (* priv viol; handler skips *)
        (* 12 *) Isa.Ldi (3, 1);
        (* 13 *) Isa.Halt;
      ]
  in
  Alcotest.(check int) "resumed after offender" 1 st.Arch.regs.(3);
  Alcotest.(check int) "mpu base0 untouched" 0 st.Arch.mpu_base.(0);
  Alcotest.(check int) "mode user after trapret" 0 st.Arch.mode

(* ------------------------------------------------------------------ *)
(* Benchmarks on the RTL system *)

let test_golden_illegal_write () =
  let sys = System.create Programs.illegal_write in
  let viol_cycle = ref (-1) in
  let steps = ref 0 in
  while (not (System.halted sys)) && !steps < Programs.illegal_write.Programs.max_cycles do
    let outcome = System.step sys in
    if outcome.Model.data_viol && !viol_cycle < 0 then viol_cycle := System.cycle sys - 1;
    incr steps
  done;
  Alcotest.(check bool) "halted" true (System.halted sys);
  Alcotest.(check bool) "violation detected" true (!viol_cycle > 0);
  Alcotest.(check int) "secret intact" Programs.secret_value (System.dmem sys).(Programs.secret_addr);
  Alcotest.(check int) "cause data" Isa.cause_data (System.state sys).Arch.cause

let test_golden_illegal_read () =
  let sys = System.create Programs.illegal_read in
  ignore (System.run sys ~max_cycles:Programs.illegal_read.Programs.max_cycles);
  Alcotest.(check bool) "halted" true (System.halted sys);
  Alcotest.(check int) "nothing leaked" 0 (System.dmem sys).(Programs.out_addr)

let test_golden_synthetic_runs_long () =
  let sys = System.create Programs.synthetic in
  let viols = ref 0 in
  let steps = ref 0 in
  while (not (System.halted sys)) && !steps < Programs.synthetic.Programs.max_cycles do
    let o = System.step sys in
    if o.Model.data_viol then incr viols;
    incr steps
  done;
  Alcotest.(check bool) "halted" true (System.halted sys);
  Alcotest.(check bool) "many violations pulsed" true (!viols > 10)

let test_checkpoint_restore_replays () =
  let sys = System.create Programs.illegal_write in
  System.run_to_cycle sys 37;
  let cp = System.checkpoint sys in
  ignore (System.run sys ~max_cycles:400);
  let final1 = (Arch.copy (System.state sys), Array.copy (System.dmem sys)) in
  System.restore sys cp;
  Alcotest.(check int) "cycle restored" 37 (System.cycle sys);
  ignore (System.run sys ~max_cycles:400);
  let final2 = (Arch.copy (System.state sys), Array.copy (System.dmem sys)) in
  Alcotest.(check bool) "same arch" true (Arch.equal (fst final1) (fst final2));
  Alcotest.(check bool) "same dmem" true (snd final1 = snd final2)

let test_golden_illegal_exec () =
  let sys = System.create Programs.illegal_exec in
  let viol = ref false in
  let steps = ref 0 in
  while (not (System.halted sys)) && !steps < Programs.illegal_exec.Programs.max_cycles do
    let o = System.step sys in
    if o.Model.instr_viol then viol := true;
    incr steps
  done;
  Alcotest.(check bool) "halted" true (System.halted sys);
  Alcotest.(check bool) "fetch violation raised" true !viol;
  Alcotest.(check int) "service routine never ran" 0 (System.dmem sys).(Programs.out_addr);
  Alcotest.(check int) "cause instr" Isa.cause_instr (System.state sys).Arch.cause

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_structure () =
  let trace = Fmc_cpu.Trace.record Programs.illegal_write ~cycles:400 in
  Alcotest.(check bool) "stops at halt" true (List.length trace < 400);
  (* Cycles are consecutive from 0. *)
  List.iteri
    (fun i (e : Fmc_cpu.Trace.entry) -> Alcotest.(check int) "consecutive" i e.Fmc_cpu.Trace.cycle)
    trace;
  (* The run starts privileged, drops to user, and raises exactly one data
     violation — on the illegal store. *)
  let first = List.hd trace in
  Alcotest.(check int) "starts privileged" 1 first.Fmc_cpu.Trace.mode;
  let viols = List.filter (fun e -> e.Fmc_cpu.Trace.data_viol) trace in
  (match viols with
  | [ v ] -> (
      Alcotest.(check int) "viol in user mode" 0 v.Fmc_cpu.Trace.mode;
      match v.Fmc_cpu.Trace.instr with
      | Some (Isa.St _) -> ()
      | i ->
          Alcotest.failf "expected store, got %s"
            (match i with Some i -> Isa.to_string i | None -> "halted"))
  | l -> Alcotest.failf "expected exactly one data violation, got %d" (List.length l));
  (* Rendering works and mentions the violation. *)
  let text = Format.asprintf "%a" Fmc_cpu.Trace.pp trace in
  Alcotest.(check bool) "pp mentions violation" true
    (let needle = "!DATA-VIOL" in
     let rec go i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let test_trace_record_from () =
  let sys = System.create Programs.illegal_write in
  System.run_to_cycle sys 50;
  let trace = Fmc_cpu.Trace.record_from sys ~cycles:10 in
  Alcotest.(check int) "ten entries" 10 (List.length trace);
  Alcotest.(check int) "starts at 50" 50 (List.hd trace).Fmc_cpu.Trace.cycle

(* ------------------------------------------------------------------ *)
(* RTL vs gate co-simulation *)

let cosim_program (program : Programs.t) cycles =
  let sys = System.create program in
  let c = Lazy.force circuit in
  let net = Netsys.create c program in
  for cyc = 0 to cycles - 1 do
    (* Compare architectural state before each cycle. *)
    let gate_arch = Netsys.read_arch net in
    if not (Arch.equal (System.state sys) gate_arch) then begin
      let diffs = Arch.diff (System.state sys) gate_arch in
      Alcotest.failf "cycle %d: state diverged on %s" cyc (String.concat "," diffs)
    end;
    ignore (System.step sys);
    Netsys.step net
  done;
  (* Memories agree at the end. *)
  Alcotest.(check bool) "dmem equal" true (System.dmem sys = Netsys.dmem net)

let test_cosim_illegal_write () = cosim_program Programs.illegal_write 250
let test_cosim_illegal_read () = cosim_program Programs.illegal_read 250
let test_cosim_illegal_exec () = cosim_program Programs.illegal_exec 250
let test_cosim_synthetic () = cosim_program Programs.synthetic 1000

(* Random-program co-simulation: the strongest equivalence evidence. *)
let cosim_random_prop =
  QCheck.Test.make ~name:"random programs: model = netlist for 120 cycles" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      (* Random but mostly-sane program: random instructions with a bias
         toward short branches; r0 left alone so loops terminate often.
         Whatever it does, both levels must agree. *)
      let n = 48 in
      let imem =
        Array.init n (fun _ ->
            let r () = Rng.int rng 8 in
            let instr =
              match Rng.int rng 14 with
              | 0 -> Isa.Ldi (r (), Rng.int rng 256)
              | 1 -> Isa.Lui (r (), Rng.int rng 256)
              | 2 -> Isa.Add (r (), r (), r ())
              | 3 -> Isa.Sub (r (), r (), r ())
              | 4 -> Isa.And_ (r (), r (), r ())
              | 5 -> Isa.Or_ (r (), r (), r ())
              | 6 -> Isa.Xor_ (r (), r (), r ())
              | 7 -> Isa.Shl (r (), r (), r ())
              | 8 -> Isa.Shr (r (), r (), r ())
              | 9 -> Isa.Ld (r (), r (), Rng.int rng 64)
              | 10 -> Isa.St (r (), r (), Rng.int rng 64)
              | 11 -> Isa.Brnz (r (), Rng.int_in rng (-4) 4)
              | 12 -> Isa.Mpuw (Rng.int rng 6, r ())
              | _ -> Isa.Retu
            in
            Isa.encode instr)
      in
      let program =
        {
          Programs.name = "random";
          imem;
          dmem_size = 256;
          dmem_init = List.init 16 (fun i -> (i * 3, (i * 917) land 0xffff));
          observable = [];
          max_cycles = 120;
          attack = None;
          user_code_range = None;
        }
      in
      let sys = System.create program in
      let c = Lazy.force circuit in
      let net = Netsys.create c program in
      let ok = ref true in
      for _ = 1 to 120 do
        if !ok then begin
          ignore (System.step sys);
          Netsys.step net;
          if not (Arch.equal (System.state sys) (Netsys.read_arch net)) then ok := false
        end
      done;
      !ok && System.dmem sys = Netsys.dmem net)

let test_netsys_responding_signal () =
  (* The data_viol output must pulse at gate level exactly when the model
     reports it. *)
  let program = Programs.illegal_write in
  let sys = System.create program in
  let c = Lazy.force circuit in
  let net = Netsys.create c program in
  let model_viol = ref [] and gate_viol = ref [] in
  for cyc = 0 to 199 do
    Netsys.settle net;
    if Netsys.read_output net "data_viol" = 1 then gate_viol := cyc :: !gate_viol;
    let o = System.step sys in
    if o.Model.data_viol then model_viol := cyc :: !model_viol;
    Netsys.step net
  done;
  Alcotest.(check bool) "violation seen" true (!model_viol <> []);
  Alcotest.(check (list int)) "same cycles" !model_viol !gate_viol

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cpu"
    [
      ( "arch",
        [
          Alcotest.test_case "group get/set roundtrip" `Quick test_arch_groups_roundtrip;
          Alcotest.test_case "reset values" `Quick test_arch_reset_values;
          Alcotest.test_case "total bits" `Quick test_arch_total_bits;
          Alcotest.test_case "diff" `Quick test_arch_diff;
          Alcotest.test_case "mpu region semantics" `Quick test_mpu_allows;
        ] );
      ( "model",
        [
          Alcotest.test_case "alu" `Quick test_model_alu;
          Alcotest.test_case "16-bit wraparound" `Quick test_model_wraparound;
          Alcotest.test_case "lui keeps low byte" `Quick test_model_lui_keeps_low;
          Alcotest.test_case "shifts" `Quick test_model_shifts;
          Alcotest.test_case "load/store" `Quick test_model_load_store;
          Alcotest.test_case "branch loop" `Quick test_model_branches;
          Alcotest.test_case "jalr" `Quick test_model_jalr;
          Alcotest.test_case "jalr rd=ra" `Quick test_model_jalr_same_reg;
          Alcotest.test_case "halt freezes" `Quick test_model_halt_freezes;
          Alcotest.test_case "mpuw + privilege trap" `Quick test_model_mpuw_and_priv_trap;
          Alcotest.test_case "data violation" `Quick test_model_data_violation;
          Alcotest.test_case "instruction violation" `Quick test_model_instr_violation;
          Alcotest.test_case "trapret skips offender" `Quick test_model_trapret;
        ] );
      ( "system",
        [
          Alcotest.test_case "golden illegal-write" `Quick test_golden_illegal_write;
          Alcotest.test_case "golden illegal-read" `Quick test_golden_illegal_read;
          Alcotest.test_case "golden synthetic" `Quick test_golden_synthetic_runs_long;
          Alcotest.test_case "checkpoint restore replays" `Quick test_checkpoint_restore_replays;
          Alcotest.test_case "golden illegal-exec" `Quick test_golden_illegal_exec;
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          Alcotest.test_case "trace record_from" `Quick test_trace_record_from;
        ] );
      ( "cosim",
        [
          Alcotest.test_case "illegal-write benchmark" `Slow test_cosim_illegal_write;
          Alcotest.test_case "illegal-read benchmark" `Slow test_cosim_illegal_read;
          Alcotest.test_case "illegal-exec benchmark" `Slow test_cosim_illegal_exec;
          Alcotest.test_case "synthetic benchmark" `Slow test_cosim_synthetic;
          Alcotest.test_case "responding signal alignment" `Slow test_netsys_responding_signal;
        ] );
      ("cosim-props", q [ cosim_random_prop ]);
    ]
