(* Tests for the TOYSPN crypto substrate: cipher algebra, RTL-vs-gate
   equivalence of the core, and last-round differential fault analysis. *)

module Cipher = Fmc_crypto.Cipher
module Model = Fmc_crypto.Core_model
module Circuit = Fmc_crypto.Core_circuit
module Harness = Fmc_crypto.Harness
module Dfa = Fmc_crypto.Dfa
module Sim = Fmc_gatesim.Cycle_sim
module Transient = Fmc_gatesim.Transient
module Rng = Fmc_prelude.Rng

let circuit = lazy (Circuit.build ())

(* ------------------------------------------------------------------ *)
(* Cipher algebra *)

let test_sbox_bijective () =
  let seen = Array.make 16 false in
  Array.iter (fun v -> seen.(v) <- true) Cipher.sbox;
  Alcotest.(check bool) "sbox is a permutation" true (Array.for_all Fun.id seen);
  for v = 0 to 15 do
    Alcotest.(check int) "inv_sbox inverts" v Cipher.inv_sbox.(Cipher.sbox.(v))
  done

let test_permute_bijective () =
  let seen = Array.make 16 false in
  for i = 0 to 15 do
    seen.(Cipher.permute_bit i) <- true
  done;
  Alcotest.(check bool) "permute_bit is a permutation" true (Array.for_all Fun.id seen)

let test_layers_invert () =
  for _ = 1 to 50 do
    let v = Random.int 0x10000 in
    Alcotest.(check int) "sbox layer" v (Cipher.inv_sbox_layer (Cipher.sbox_layer v));
    Alcotest.(check int) "permute layer" v (Cipher.inv_permute (Cipher.permute v))
  done

let test_known_vector_stability () =
  (* Freeze one vector so accidental cipher changes are caught loudly
     (there is no external test vector for a made-up cipher; stability is
     what matters for the DFA tests). *)
  let ct = Cipher.encrypt ~key:0xBEEF 0x1234 in
  Alcotest.(check int) "decrypt inverts" 0x1234 (Cipher.decrypt ~key:0xBEEF ct);
  Alcotest.(check bool) "nontrivial" true (ct <> 0x1234)

let test_rotl () =
  Alcotest.(check int) "rotl 0" 0x8001 (Cipher.rotl16 0x8001 0);
  Alcotest.(check int) "rotl 1" 0x0003 (Cipher.rotl16 0x8001 1);
  Alcotest.(check int) "rotl 16 = id" 0x8001 (Cipher.rotl16 0x8001 16)

let cipher_props =
  [
    QCheck.Test.make ~name:"decrypt . encrypt = id" ~count:500
      QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
      (fun (key, pt) -> Cipher.decrypt ~key (Cipher.encrypt ~key pt) = pt);
    QCheck.Test.make ~name:"encryption is key-sensitive" ~count:200
      QCheck.(triple (int_bound 0xffff) (int_bound 0xffff) (int_bound 0xffff))
      (fun (k1, k2, pt) ->
        QCheck.assume (k1 <> k2);
        (* Toy cipher: different keys almost always give different
           ciphertexts; a collision would only be suspicious in bulk. *)
        Cipher.encrypt ~key:k1 pt <> Cipher.encrypt ~key:k2 pt
        || Cipher.encrypt ~key:k1 (pt lxor 1) <> Cipher.encrypt ~key:k2 (pt lxor 1));
    QCheck.Test.make ~name:"last_round_input consistent with encrypt" ~count:300
      QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
      (fun (key, pt) ->
        let y = Cipher.last_round_input ~key ~plaintext:pt in
        Cipher.sbox_layer y lxor Cipher.whitening_key ~key = Cipher.encrypt ~key pt);
  ]

(* ------------------------------------------------------------------ *)
(* Model vs reference, model vs netlist *)

let test_model_matches_reference () =
  let m = Model.create () in
  for _ = 1 to 100 do
    let key = Random.int 0x10000 and pt = Random.int 0x10000 in
    Alcotest.(check int) "model = reference" (Cipher.encrypt ~key pt) (Model.encrypt m ~key pt)
  done

let test_model_groups () =
  let m = Model.create () in
  List.iter
    (fun (name, width) ->
      let v = 0x1B5D land ((1 lsl width) - 1) in
      Model.set_group m name v;
      Alcotest.(check int) name v (Model.get_group m name))
    Model.groups

let test_model_done_timing () =
  let m = Model.create () in
  Model.step m ~load:true ~plaintext:0x1111 ~key_in:0x2222;
  Alcotest.(check bool) "busy after load" true m.Model.busy;
  for _ = 1 to Cipher.rounds - 1 do
    Model.step m ~load:false ~plaintext:0 ~key_in:0;
    Alcotest.(check bool) "still busy" true m.Model.busy
  done;
  Model.step m ~load:false ~plaintext:0 ~key_in:0;
  Alcotest.(check bool) "done after R rounds" true m.Model.done_;
  Alcotest.(check bool) "not busy" false m.Model.busy;
  (* Idle cycles change nothing. *)
  let snap = Model.copy m in
  Model.step m ~load:false ~plaintext:0 ~key_in:0;
  Alcotest.(check bool) "idle is a no-op" true (Model.equal snap m)

let cosim_once key pt =
  let c = Lazy.force circuit in
  let sim = Sim.create c.Circuit.net in
  let m = Model.create () in
  for cyc = 0 to Cipher.rounds + 2 do
    let load = cyc = 0 in
    Sim.set_input sim c.Circuit.load load;
    Sim.set_input_bus sim c.Circuit.pt pt;
    Sim.set_input_bus sim c.Circuit.key_in key;
    Sim.eval_comb sim;
    Sim.latch sim;
    Model.step m ~load ~plaintext:pt ~key_in:key;
    List.iter
      (fun (name, _) ->
        if Sim.read_group sim name <> Model.get_group m name then
          Alcotest.failf "cycle %d: group %s diverged (gate %d vs model %d)" cyc name
            (Sim.read_group sim name) (Model.get_group m name))
      Model.groups
  done

let test_cosim_fixed () = cosim_once 0xBEEF 0x1234

let cosim_prop =
  QCheck.Test.make ~name:"netlist = model for random key/plaintext" ~count:60
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (key, pt) ->
      cosim_once key pt;
      true)

let test_harness_encrypt () =
  let h = Harness.create (Lazy.force circuit) in
  for _ = 1 to 30 do
    let key = Random.int 0x10000 and pt = Random.int 0x10000 in
    Alcotest.(check int) "harness = reference" (Cipher.encrypt ~key pt) (Harness.encrypt h ~key pt)
  done

(* ------------------------------------------------------------------ *)
(* DFA *)

(* Ideal fault model: flip one bit of the last-round S-box input, compute
   the faulty ciphertext at spec level. *)
let ideal_faulty ~key ~pt ~bit =
  let y = Cipher.last_round_input ~key ~plaintext:pt in
  Cipher.sbox_layer (y lxor (1 lsl bit)) lxor Cipher.whitening_key ~key

let test_dfa_candidates_contain_truth () =
  for _ = 1 to 100 do
    let key = Random.int 0x10000 and pt = Random.int 0x10000 in
    let wk = Cipher.whitening_key ~key in
    let bit = Random.int 16 in
    let c = Cipher.encrypt ~key pt in
    let c' = ideal_faulty ~key ~pt ~bit in
    let nibble = bit / 4 in
    let cands = Dfa.nibble_candidates ~correct:c ~faulty:c' ~nibble in
    Alcotest.(check bool) "true key nibble among candidates" true
      (List.mem ((wk lsr (4 * nibble)) land 0xf) cands);
    Alcotest.(check bool) "informative" true (List.length cands < 16)
  done

let test_dfa_recovers_key_with_ideal_faults () =
  let key = 0xC0DE in
  let pt = 0x5A5A in
  let c = Cipher.encrypt ~key pt in
  let st = ref (Dfa.start ~correct:c) in
  (* Feed single-bit faults on every bit: plenty to pin all four nibbles. *)
  for bit = 0 to 15 do
    st := Dfa.observe !st ~faulty:(ideal_faulty ~key ~pt ~bit)
  done;
  (match Dfa.recovered_whitening_key !st with
  | Some wk ->
      Alcotest.(check int) "whitening key" (Cipher.whitening_key ~key) wk;
      Alcotest.(check int) "master key" key (Dfa.master_key_of_whitening wk)
  | None ->
      let sizes = Array.map List.length (Dfa.candidates !st) in
      Alcotest.failf "key not pinned; candidate set sizes %d %d %d %d" sizes.(0) sizes.(1)
        sizes.(2) sizes.(3))

let test_dfa_uninformative_cases () =
  Alcotest.(check bool) "identical ciphertexts" false (Dfa.informative ~correct:0x1234 ~faulty:0x1234);
  let st = Dfa.start ~correct:0x1234 in
  let st = Dfa.observe st ~faulty:0x1234 in
  Array.iter
    (fun set -> Alcotest.(check int) "no pruning" 16 (List.length set))
    (Dfa.candidates st)

let test_master_key_inversion () =
  for _ = 1 to 50 do
    let key = Random.int 0x10000 in
    Alcotest.(check int) "wk inverts" key (Dfa.master_key_of_whitening (Cipher.whitening_key ~key))
  done

(* Gate-level DFA: strike the exposed xor layer during the last round and
   run the real analysis on the observed faulty ciphertexts. *)
let test_dfa_on_gate_level_faults () =
  let c = Lazy.force circuit in
  let h = Harness.create c in
  let key = 0xFACE and pt = 0x0123 in
  let correct = Cipher.encrypt ~key pt in
  Alcotest.(check int) "gate-level correct ct" correct (Harness.encrypt h ~key pt);
  let config = Transient.default_config c.Circuit.net in
  let xr = Circuit.last_round_xor_gates c in
  let rng = Rng.create 4 in
  let st = ref (Dfa.start ~correct) in
  let informative = ref 0 and total = ref 0 in
  (* The last round executes in cycle rounds (load = cycle 0). *)
  let last_cycle = Cipher.rounds in
  for _ = 1 to 1200 do
    let node = Rng.choose rng xr in
    let time = Rng.float rng config.Transient.clock_period in
    let faulty =
      Harness.encrypt_with_strikes h ~key ~plaintext:pt ~cycle:last_cycle
        ~strikes:[ { Transient.node; time; width = 150. +. Rng.float rng 150. } ]
        config
    in
    incr total;
    if Dfa.informative ~correct ~faulty then begin
      incr informative;
      st := Dfa.observe !st ~faulty
    end
  done;
  Alcotest.(check bool) "some strikes are informative" true (!informative > 10);
  (* The candidate sets must still contain the true whitening key... *)
  let wk = Cipher.whitening_key ~key in
  Array.iteri
    (fun nibble set ->
      Alcotest.(check bool)
        (Printf.sprintf "nibble %d keeps the truth" nibble)
        true
        (List.mem ((wk lsr (4 * nibble)) land 0xf) set))
    (Dfa.candidates !st);
  (* ... and enough faults pin the key completely. *)
  match Dfa.recovered_whitening_key !st with
  | Some got ->
      Alcotest.(check int) "recovered whitening key" wk got;
      Alcotest.(check int) "recovered master key" key (Dfa.master_key_of_whitening got)
  | None ->
      let sizes = Array.map List.length (Dfa.candidates !st) in
      Alcotest.failf "gate-level DFA did not converge: sizes %d %d %d %d (informative %d/%d)"
        sizes.(0) sizes.(1) sizes.(2) sizes.(3) !informative !total

let () =
  Random.self_init ();
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "crypto"
    [
      ( "cipher",
        [
          Alcotest.test_case "sbox bijective" `Quick test_sbox_bijective;
          Alcotest.test_case "permutation bijective" `Quick test_permute_bijective;
          Alcotest.test_case "layers invert" `Quick test_layers_invert;
          Alcotest.test_case "roundtrip vector" `Quick test_known_vector_stability;
          Alcotest.test_case "rotl16" `Quick test_rotl;
        ] );
      ("cipher-props", q cipher_props);
      ( "core",
        [
          Alcotest.test_case "model matches reference" `Quick test_model_matches_reference;
          Alcotest.test_case "model groups" `Quick test_model_groups;
          Alcotest.test_case "done timing" `Quick test_model_done_timing;
          Alcotest.test_case "cosim fixed vector" `Quick test_cosim_fixed;
          Alcotest.test_case "harness encrypt" `Quick test_harness_encrypt;
        ] );
      ("core-props", q [ cosim_prop ]);
      ( "dfa",
        [
          Alcotest.test_case "candidates contain truth" `Quick test_dfa_candidates_contain_truth;
          Alcotest.test_case "ideal faults recover key" `Quick test_dfa_recovers_key_with_ideal_faults;
          Alcotest.test_case "uninformative cases" `Quick test_dfa_uninformative_cases;
          Alcotest.test_case "whitening-key inversion" `Quick test_master_key_inversion;
          Alcotest.test_case "gate-level faults recover key" `Slow test_dfa_on_gate_level_faults;
        ] );
    ]
