(* Tests for the distributed campaign service: RNG substream isolation,
   the shared tally/quarantine wire codecs, lease epoch fencing
   (exactly-once), coordinator checkpointing, permutation-invariant
   merging, and a full loopback campaign over a Unix socket with a
   worker dying mid-run — whose merged report must be bit-identical to
   the single-process sharded reference. *)

module Programs = Fmc_isa.Programs
module Rng = Fmc_prelude.Rng
open Fmc
open Fmc_dist

let ctx = lazy (Experiments.context ())
let engine () = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write

let prepare strategy =
  let e = engine () in
  Sampler.prepare ~static_vuln:(Engine.static_vulnerable e) strategy
    (Experiments.default_attack (Lazy.force ctx))
    (Experiments.precharac (Lazy.force ctx))
    ~placement:(Engine.placement e)

let exact = Alcotest.(check (float 0.))

let check_reports_equal (a : Ssf.report) (b : Ssf.report) =
  Alcotest.(check string) "strategy" a.Ssf.strategy b.Ssf.strategy;
  Alcotest.(check int) "n" a.Ssf.n b.Ssf.n;
  exact "ssf" a.Ssf.ssf b.Ssf.ssf;
  exact "ssf_upper" a.Ssf.ssf_upper b.Ssf.ssf_upper;
  exact "variance" a.Ssf.variance b.Ssf.variance;
  exact "ess" a.Ssf.ess b.Ssf.ess;
  exact "sum_w" a.Ssf.sum_w b.Ssf.sum_w;
  exact "sum_w2" a.Ssf.sum_w2 b.Ssf.sum_w2;
  Alcotest.(check int) "successes" a.Ssf.successes b.Ssf.successes;
  Alcotest.(check int) "masked" a.Ssf.outcomes.Ssf.masked b.Ssf.outcomes.Ssf.masked;
  Alcotest.(check int) "mem_only" a.Ssf.outcomes.Ssf.mem_only b.Ssf.outcomes.Ssf.mem_only;
  Alcotest.(check int) "resumed" a.Ssf.outcomes.Ssf.resumed b.Ssf.outcomes.Ssf.resumed;
  Alcotest.(check int) "quarantined" a.Ssf.outcomes.Ssf.quarantined
    b.Ssf.outcomes.Ssf.quarantined;
  Alcotest.(check int) "by_direct" a.Ssf.success_by_direct b.Ssf.success_by_direct;
  Alcotest.(check int) "by_comb" a.Ssf.success_by_comb b.Ssf.success_by_comb;
  Alcotest.(check (list (pair int (float 0.)))) "trace" a.Ssf.trace b.Ssf.trace;
  Alcotest.(check (list (pair (pair string int) (float 0.))))
    "contributions" a.Ssf.contributions b.Ssf.contributions

(* ------------------------------------------------------------------ *)
(* RNG substreams *)

let test_substream_deterministic () =
  let a = Rng.substream ~seed:42L ~shard:3 in
  let b = Rng.substream ~seed:42L ~shard:3 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same draw" (Rng.int64 a) (Rng.int64 b)
  done;
  let c = Rng.substream ~seed:42L ~shard:4 in
  Alcotest.(check bool) "different shard diverges" true (Rng.int64 a <> Rng.int64 c)

let test_substream_disjoint () =
  (* Pairwise disjoint over 10^6 draws across 4 shards: SplitMix64 with
     distinct start states collides with probability ~ (10^6)^2 / 2^64
     per pair — effectively never; a collision here means the substream
     spacing is broken. *)
  let seen = Hashtbl.create (1 lsl 20) in
  let collisions = ref 0 in
  for shard = 0 to 3 do
    let rng = Rng.substream ~seed:7L ~shard in
    for _ = 1 to 250_000 do
      let v = Rng.int64 rng in
      (match Hashtbl.find_opt seen v with
      | Some other when other <> shard -> incr collisions
      | _ -> ());
      Hashtbl.replace seen v shard
    done
  done;
  Alcotest.(check int) "no cross-shard collisions" 0 !collisions

(* ------------------------------------------------------------------ *)
(* Shared codecs *)

let sample_shard () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  Campaign.run_shard e prep ~seed:11 ~shard:1 ~start:40 ~len:40

let test_tally_codec_roundtrip () =
  let sh = sample_shard () in
  let s = sh.Campaign.sh_snapshot in
  match Ssf.Tally.of_string (Ssf.Tally.to_string s) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok s' ->
      Alcotest.(check bool) "snapshot round-trips bit-exactly" true (s = s');
      (* and the decoded snapshot reports identically *)
      check_reports_equal
        (Campaign.shard_report ~strategy:"mixed" s)
        (Campaign.shard_report ~strategy:"mixed" s')

let quarantine_fixture =
  {
    Campaign.q_index = 123;
    q_disposition = Campaign.Crashed "Failure(\"boom with spaces\nand a newline\")";
    q_stratum = Sampler.Vulnerable;
    q_t = 7;
    q_center = 991;
    q_radius = 3.25;
    q_width = 110.5;
    q_time_frac = 0.625;
    q_weight = 1.75e-3;
  }

let test_quarantine_codec_roundtrip () =
  let check e =
    match Campaign.quarantine_entry_of_string (Campaign.quarantine_entry_to_string e) with
    | Error msg -> Alcotest.failf "decode failed: %s" msg
    | Ok e' ->
        Alcotest.(check int) "index" e.Campaign.q_index e'.Campaign.q_index;
        Alcotest.(check bool) "stratum" true (e.Campaign.q_stratum = e'.Campaign.q_stratum);
        exact "weight" e.Campaign.q_weight e'.Campaign.q_weight;
        exact "radius" e.Campaign.q_radius e'.Campaign.q_radius;
        (match (e.Campaign.q_disposition, e'.Campaign.q_disposition) with
        | Campaign.Timed_out, Campaign.Timed_out -> ()
        | Campaign.Crashed m, Campaign.Crashed m' ->
            (* newlines are flattened to spaces; everything else survives *)
            Alcotest.(check string) "message"
              (String.map (function '\n' -> ' ' | c -> c) m)
              m'
        | _ -> Alcotest.fail "disposition changed")
  in
  check quarantine_fixture;
  check { quarantine_fixture with Campaign.q_disposition = Campaign.Timed_out }

let test_protocol_roundtrip () =
  let client_msgs =
    [
      Protocol.Hello
        { version = Protocol.version; worker = "w1"; fingerprint = "v2 strategy=mixed seed=7" };
      Protocol.Request_shard;
      Protocol.Heartbeat { shard = 3; epoch = 2; samples_done = 40 };
      Protocol.Shard_done
        {
          shard = 3;
          epoch = 2;
          tally = "line one\nline two\n";
          quarantined = [ quarantine_fixture ];
        };
      Protocol.Fetch_report;
      Protocol.Goodbye;
    ]
  in
  List.iter
    (fun m ->
      let tag, payload = Protocol.encode_client m in
      match Protocol.decode_client tag payload with
      | Error msg -> Alcotest.failf "client decode failed: %s" msg
      | Ok m' -> (
          (* the quarantine message flattens newlines in crash payloads;
             compare everything else structurally *)
          match (m, m') with
          | Protocol.Shard_done a, Protocol.Shard_done b ->
              Alcotest.(check int) "shard" a.shard b.shard;
              Alcotest.(check int) "epoch" a.epoch b.epoch;
              Alcotest.(check string) "tally" a.tally b.tally;
              Alcotest.(check int) "nq" (List.length a.quarantined) (List.length b.quarantined)
          | _ -> Alcotest.(check bool) "client msg round-trips" true (m = m')))
    client_msgs;
  let server_msgs =
    [
      Protocol.Welcome { version = Protocol.version };
      Protocol.Retry_later { cooldown_s = 2.5 };
      Protocol.Assign { shard = 0; epoch = 1; start = 0; len = 100 };
      Protocol.No_work { finished = true };
      Protocol.No_work { finished = false };
      Protocol.Ack { accepted = false; reason = "stale epoch" };
      Protocol.Report
        { shards = [ (0, "a\nb\n"); (1, "c\n") ]; quarantined = []; elapsed_s = 1.5 };
      Protocol.Report_pending;
      Protocol.Reject { reason = "fingerprint mismatch" };
    ]
  in
  List.iter
    (fun m ->
      let tag, payload = Protocol.encode_server m in
      match Protocol.decode_server tag payload with
      | Error msg -> Alcotest.failf "server decode failed: %s" msg
      | Ok m' -> Alcotest.(check bool) "server msg round-trips" true (m = m'))
    server_msgs

(* ------------------------------------------------------------------ *)
(* Lease table *)

let plan3 = [| (0, 10); (10, 10); (20, 5) |]

let test_lease_lifecycle () =
  let t = Lease.create ~plan:plan3 ~ttl:10. in
  Alcotest.(check int) "total" 3 (Lease.total t);
  (match Lease.acquire t ~now:0. ~worker:"a" with
  | `Assign { Lease.shard = 0; epoch = 1; start = 0; len = 10 } -> ()
  | _ -> Alcotest.fail "expected shard 0 epoch 1");
  Alcotest.(check int) "in flight" 1 (Lease.in_flight t);
  Alcotest.(check (option string)) "holder" (Some "a") (Lease.holder t ~shard:0);
  (* heartbeat extends the deadline *)
  Alcotest.(check bool) "heartbeat ok" true (Lease.heartbeat t ~now:5. ~shard:0 ~epoch:1 = `Ok);
  Alcotest.(check int) "no expiry before deadline" 0 (Lease.sweep t ~now:12.);
  Alcotest.(check int) "expiry after deadline" 1 (Lease.sweep t ~now:16.);
  Alcotest.(check bool) "late heartbeat stale" true
    (Lease.heartbeat t ~now:16. ~shard:0 ~epoch:1 = `Stale);
  (* the shard comes back under a bumped epoch *)
  (match Lease.acquire t ~now:16. ~worker:"b" with
  | `Assign { Lease.shard = 0; epoch = 2; _ } -> ()
  | _ -> Alcotest.fail "expected shard 0 epoch 2");
  Alcotest.(check bool) "stale complete fenced" true
    (Lease.complete t ~shard:0 ~epoch:1 = `Stale);
  Alcotest.(check bool) "current complete accepted" true
    (Lease.complete t ~shard:0 ~epoch:2 = `Accepted);
  Alcotest.(check bool) "re-delivery is duplicate" true
    (Lease.complete t ~shard:0 ~epoch:2 = `Duplicate);
  Alcotest.(check bool) "unknown shard" true (Lease.complete t ~shard:99 ~epoch:1 = `Unknown);
  (* drain the rest *)
  List.iter
    (fun _ ->
      match Lease.acquire t ~now:20. ~worker:"b" with
      | `Assign { Lease.shard; epoch; _ } ->
          Alcotest.(check bool) "accepted" true (Lease.complete t ~shard ~epoch = `Accepted)
      | _ -> Alcotest.fail "expected an assignment")
    [ (); () ];
  Alcotest.(check bool) "finished" true (Lease.finished t);
  Alcotest.(check bool) "acquire after finish" true
    (Lease.acquire t ~now:21. ~worker:"c" = `Finished)

let test_lease_wait_when_all_leased () =
  let t = Lease.create ~plan:[| (0, 5) |] ~ttl:10. in
  (match Lease.acquire t ~now:0. ~worker:"a" with `Assign _ -> () | _ -> Alcotest.fail "assign");
  Alcotest.(check bool) "second worker waits" true (Lease.acquire t ~now:1. ~worker:"b" = `Wait)

(* Epoch fencing end to end over real shard results: the stale result is
   rejected, the shard re-runs, and the merged report covers exactly the
   requested sample count — no double counting, no holes. *)
let test_fencing_exactly_once () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 120 and shard_size = 30 and seed = 5 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let lease = Lease.create ~plan ~ttl:1. in
  let blobs = Hashtbl.create 8 in
  let run_one shard =
    let start, len = plan.(shard) in
    let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
    Ssf.Tally.to_string sh.Campaign.sh_snapshot
  in
  (* worker a leases shard 0 and dies *)
  (match Lease.acquire lease ~now:0. ~worker:"a" with
  | `Assign { Lease.shard = 0; epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "expected shard 0");
  Alcotest.(check int) "lease expires" 1 (Lease.sweep lease ~now:2.);
  (* worker b drains everything under live epochs *)
  let rec drain now =
    match Lease.acquire lease ~now ~worker:"b" with
    | `Assign { Lease.shard; epoch; _ } ->
        let blob = run_one shard in
        Alcotest.(check bool) "accepted" true (Lease.complete lease ~shard ~epoch = `Accepted);
        Hashtbl.replace blobs shard blob;
        drain (now +. 0.1)
    | `Finished -> ()
    | `Wait -> Alcotest.fail "unexpected wait"
  in
  drain 2.;
  (* worker a's zombie result arrives after the fact: fenced *)
  Alcotest.(check bool) "zombie fenced" true (Lease.complete lease ~shard:0 ~epoch:1 = `Stale);
  Alcotest.(check int) "every shard exactly once" (Array.length plan) (Lease.completed lease);
  let shards = Hashtbl.fold (fun i b acc -> (i, b) :: acc) blobs [] in
  match Merge.report_of_blobs ~strategy:(Sampler.name prep) shards with
  | Error msg -> Alcotest.failf "merge failed: %s" msg
  | Ok report ->
      Alcotest.(check int) "report covers every requested sample" samples report.Ssf.n;
      let reference = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
      check_reports_equal reference.Campaign.report report

(* ------------------------------------------------------------------ *)
(* Coordinator checkpoint *)

let test_ckpt_roundtrip () =
  let path = Filename.temp_file "fmc-dist" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let state =
        {
          Ckpt.st_fingerprint = "v1 strategy=mixed benchmark=write samples=100 seed=7";
          st_shards = [ (0, "alpha\nbeta\n"); (2, "gamma\n") ];
          st_quarantined = [ quarantine_fixture ];
          st_audit = None;
        }
      in
      Ckpt.save ~path state;
      (match Ckpt.load ~path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok s ->
          Alcotest.(check string) "fingerprint" state.Ckpt.st_fingerprint s.Ckpt.st_fingerprint;
          Alcotest.(check (list (pair int string))) "shards" state.Ckpt.st_shards s.Ckpt.st_shards;
          Alcotest.(check int) "quarantine count" 1 (List.length s.Ckpt.st_quarantined);
          Alcotest.(check bool) "no audit block" true (s.Ckpt.st_audit = None));
      (* v3: the audit block (accepted-shard digests + banned workers)
         rides the same file and round-trips exactly. *)
      let audited =
        {
          state with
          Ckpt.st_audit =
            Some
              {
                Ckpt.au_entries =
                  [
                    { Ckpt.au_shard = 0; au_worker = "alice"; au_digest = "d0"; au_passed = true };
                    { Ckpt.au_shard = 2; au_worker = "bob"; au_digest = "d2"; au_passed = false };
                  ];
                au_banned = [ "mallory" ];
              };
        }
      in
      Ckpt.save ~path audited;
      match Ckpt.load ~path with
      | Error msg -> Alcotest.failf "audited load failed: %s" msg
      | Ok s -> Alcotest.(check bool) "audit block round-trips" true (s.Ckpt.st_audit = audited.Ckpt.st_audit))

(* ------------------------------------------------------------------ *)
(* Permutation-invariant merging *)

let test_merge_order_invariant () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 120 and shard_size = 30 and seed = 9 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let blobs =
    Array.to_list
      (Array.mapi
         (fun shard (start, len) ->
           let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
           (shard, Ssf.Tally.to_string sh.Campaign.sh_snapshot))
         plan)
  in
  let merged order =
    match Merge.report_of_blobs ~strategy:(Sampler.name prep) order with
    | Ok r -> r
    | Error msg -> Alcotest.failf "merge failed: %s" msg
  in
  let reference = merged blobs in
  check_reports_equal reference (merged (List.rev blobs));
  (match blobs with
  | a :: b :: rest -> check_reports_equal reference (merged (b :: (rest @ [ a ])))
  | _ -> Alcotest.fail "expected several shards");
  (* and the sharded single-process runner is the same computation *)
  let local = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
  check_reports_equal local.Campaign.report reference

(* ------------------------------------------------------------------ *)
(* Loopback campaign over a Unix socket *)

let send conn msg =
  let tag, payload = Protocol.encode_client msg in
  Wire.write_frame conn ~tag payload

let recv conn =
  let tag, payload = Wire.read_frame conn in
  match Protocol.decode_server tag payload with
  | Ok m -> m
  | Error msg -> Alcotest.failf "server sent garbage: %s" msg

let test_loopback_campaign_with_dead_worker () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 120 and shard_size = 30 and seed = 5 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let fingerprint =
    Protocol.fingerprint ~strategy:(Sampler.name prep) ~benchmark:"write" ~samples ~seed
      ~shard_size ~sample_budget:None ()
  in
  let sock_path = Filename.temp_file "fmc-dist" ".sock" in
  Sys.remove sock_path;
  let ckpt_path = Filename.temp_file "fmc-dist" ".ckpt" in
  Sys.remove ckpt_path;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ sock_path; ckpt_path ])
    (fun () ->
      let addr = Wire.Unix_path sock_path in
      let config =
        {
          (Coordinator.default_config addr) with
          Coordinator.ttl_s = 1.0;
          linger_s = 1.5;
          checkpoint_path = Some ckpt_path;
        }
      in
      let reg = Fmc_obs.Metrics.create () in
      let obs = Fmc_obs.Obs.create ~metrics:reg () in
      let outcome = ref None in
      let server =
        Thread.create
          (fun () -> outcome := Some (Coordinator.serve ~obs config ~fingerprint ~plan))
          ()
      in
      (* A worker takes the first lease and dies without completing it:
         connect, hello, lease, go silent past the TTL, then report the
         (well-formed!) result under the now-fenced epoch. *)
      let fd = Wire.connect ~attempts:40 ~delay_s:0.1 addr in
      let conn = Wire.conn fd in
      send conn (Protocol.Hello { version = Protocol.version; worker = "dying"; fingerprint });
      (match recv conn with
      | Protocol.Welcome _ -> ()
      | _ -> Alcotest.fail "expected welcome");
      send conn Protocol.Request_shard;
      let shard, epoch, start, len =
        match recv conn with
        | Protocol.Assign { shard; epoch; start; len } -> (shard, epoch, start, len)
        | _ -> Alcotest.fail "expected an assignment"
      in
      Alcotest.(check int) "first lease epoch" 1 epoch;
      let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
      let blob = Ssf.Tally.to_string sh.Campaign.sh_snapshot in
      Thread.delay 1.6 (* past the TTL: the coordinator expires the lease *);
      send conn (Protocol.Shard_done { shard; epoch; tally = blob; quarantined = [] });
      (match recv conn with
      | Protocol.Ack { accepted = false; _ } -> ()
      | _ -> Alcotest.fail "zombie result must be fenced");
      Wire.close conn;
      (* A healthy worker finishes the campaign, re-running the orphaned
         shard under its bumped epoch. *)
      let wcfg =
        {
          (Worker.default_config ~addr ~worker_name:"healthy") with
          Worker.heartbeat_every = 7;
          retry_delay_s = 0.1;
        }
      in
      let accepted = Worker.run wcfg ~fingerprint e prep ~seed in
      Alcotest.(check int) "healthy worker ran every shard" (Array.length plan) accepted;
      Thread.join server;
      let oc = match !outcome with Some o -> o | None -> Alcotest.fail "no outcome" in
      Alcotest.(check int) "all shard results" (Array.length plan)
        (List.length oc.Coordinator.oc_shards);
      Alcotest.(check int) "nothing quarantined" 0 (List.length oc.Coordinator.oc_quarantined);
      let dist =
        match Merge.report_of_blobs ~strategy:(Sampler.name prep) oc.Coordinator.oc_shards with
        | Ok r -> r
        | Error msg -> Alcotest.failf "merge failed: %s" msg
      in
      let reference = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
      check_reports_equal reference.Campaign.report dist;
      (* Coordinator metrics recorded the failure story: one expired
         lease, one fenced stale result, every shard completed. *)
      let metric name =
        match Fmc_obs.Metrics.find (Fmc_obs.Metrics.snapshot reg) name with
        | Some (Fmc_obs.Metrics.Counter v) -> v
        | _ -> Alcotest.failf "missing counter %s" name
      in
      Alcotest.(check bool) "lease expired" true (metric "fmc_dist_leases_expired_total" >= 1.);
      Alcotest.(check bool) "stale result fenced" true
        (metric "fmc_dist_stale_results_total" >= 1.);
      exact "shards completed"
        (float_of_int (Array.length plan))
        (metric "fmc_dist_shards_completed_total");
      (* The checkpoint now holds the whole campaign: a restarted
         coordinator resumes finished and serves the same report. *)
      let outcome2 = ref None in
      let server2 =
        Thread.create (fun () -> outcome2 := Some (Coordinator.serve config ~fingerprint ~plan)) ()
      in
      let fcfg = Worker.default_config ~addr ~worker_name:"report-client" in
      (match Worker.fetch_report ~poll_s:0.05 ~timeout_s:10. fcfg ~fingerprint:"different" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fingerprint mismatch must be rejected");
      (match Worker.fetch_report ~poll_s:0.05 ~timeout_s:10. fcfg ~fingerprint with
      | Error err -> Alcotest.failf "fetch failed: %s" (Worker.fetch_error_message err)
      | Ok (shards, quarantined, _) ->
          Alcotest.(check int) "resumed shards" (Array.length plan) (List.length shards);
          Alcotest.(check int) "resumed quarantines" 0 (List.length quarantined);
          let fetched =
            match Merge.report_of_blobs ~strategy:(Sampler.name prep) shards with
            | Ok r -> r
            | Error msg -> Alcotest.failf "merge failed: %s" msg
          in
          check_reports_equal reference.Campaign.report fetched);
      Thread.join server2;
      match !outcome2 with
      | Some o ->
          Alcotest.(check int) "restart served from checkpoint" (Array.length plan)
            (List.length o.Coordinator.oc_shards)
      | None -> Alcotest.fail "no outcome from restarted coordinator")

(* ------------------------------------------------------------------ *)
(* Fleet observability (protocol v4): version negotiation, trace-id
   stamping on leases, worker telemetry piggybacked on existing
   messages — and the invariant that none of it moves a single byte of
   the merged report. *)

let test_v4_negotiation () =
  Alcotest.(check bool) "v3 accepted" true (Protocol.accepts_version 3);
  Alcotest.(check bool) "v4 accepted" true (Protocol.accepts_version 4);
  Alcotest.(check bool) "v5 accepted" true (Protocol.accepts_version Protocol.version);
  Alcotest.(check bool) "future version refused" false
    (Protocol.accepts_version (Protocol.version + 1));
  Alcotest.(check int) "negotiate down with a v3 peer" 3 (Protocol.negotiate ~peer:3);
  Alcotest.(check int) "negotiate down with a v4 peer" 4 (Protocol.negotiate ~peer:4);
  Alcotest.(check int) "negotiate v5 with a v5 peer" Protocol.version
    (Protocol.negotiate ~peer:Protocol.version);
  (* The campaign fingerprint is part of the v3 handshake contract and
     must not move with the wire version. *)
  Alcotest.(check int) "fingerprint version stays 3" 3 Protocol.fingerprint_version

(* The v5 digest extension rides Shard_done/Job_done and round-trips
   next to the v4 telemetry sections. *)
let test_digest_extension_roundtrip () =
  let msg =
    Protocol.Shard_done { shard = 1; epoch = 2; tally = "line one\n"; quarantined = [] }
  in
  let ext = { Protocol.no_extension with Protocol.ext_digest = Some "00ff00ffdeadbeef" } in
  let tag, payload = Protocol.encode_client_ext ~ext msg in
  (match Protocol.decode_client_ext tag payload with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok (m', ext') ->
      Alcotest.(check bool) "message survives" true (m' = msg);
      Alcotest.(check (option string)) "digest survives" (Some "00ff00ffdeadbeef")
        ext'.Protocol.ext_digest);
  (* And plain encodes carry no digest. *)
  let tag, payload = Protocol.encode_client msg in
  match Protocol.decode_client_ext tag payload with
  | Error e -> Alcotest.failf "plain decode failed: %s" e
  | Ok (_, ext') ->
      Alcotest.(check (option string)) "absent by default" None ext'.Protocol.ext_digest

let recv_ext conn =
  let tag, payload = Wire.read_frame conn in
  match Protocol.decode_server_ext tag payload with
  | Ok pair -> pair
  | Error msg -> Alcotest.failf "server sent garbage: %s" msg

let contains hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  go 0

let test_loopback_fleet_telemetry () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 90 and shard_size = 30 and seed = 7 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let fingerprint =
    Protocol.fingerprint ~strategy:(Sampler.name prep) ~benchmark:"write" ~samples ~seed
      ~shard_size ~sample_budget:None ()
  in
  let sock_path = Filename.temp_file "fmc-dist" ".sock" in
  Sys.remove sock_path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists sock_path then Sys.remove sock_path)
    (fun () ->
      let addr = Wire.Unix_path sock_path in
      let config =
        { (Coordinator.default_config addr) with Coordinator.ttl_s = 1.0; linger_s = 1.0 }
      in
      let obs =
        Fmc_obs.Obs.create ~metrics:(Fmc_obs.Metrics.create ())
          ~tracer:(Fmc_obs.Span.create ()) ()
      in
      let view = ref None in
      let outcome = ref None in
      let server =
        Thread.create
          (fun () ->
            outcome :=
              Some
                (Coordinator.serve ~obs
                   ~on_view:(fun v -> view := Some v)
                   config ~fingerprint ~plan))
          ()
      in
      let v =
        let rec wait n =
          match !view with
          | Some v -> v
          | None ->
              if n = 0 then Alcotest.fail "coordinator never published its view"
              else (
                Thread.delay 0.05;
                wait (n - 1))
        in
        wait 100
      in
      Alcotest.(check string) "view carries the deterministic trace id"
        (Fmc_obs.Traceid.trace_id ~fingerprint)
        v.Coordinator.vw_trace_id;
      (* A v3 peer still negotiates and is served, with nothing extra. *)
      let fd = Wire.connect ~attempts:40 ~delay_s:0.1 addr in
      let conn = Wire.conn fd in
      send conn (Protocol.Hello { version = 3; worker = "legacy"; fingerprint });
      (match recv conn with
      | Protocol.Welcome { version } -> Alcotest.(check int) "negotiated down to v3" 3 version
      | _ -> Alcotest.fail "expected welcome");
      send conn Protocol.Request_shard;
      (match recv_ext conn with
      | Protocol.Assign _, ext ->
          Alcotest.(check bool) "no trace ids for a v3 peer" true
            (ext.Protocol.ext_trace = None)
      | _ -> Alcotest.fail "expected an assignment");
      Wire.close conn;
      (* The lease the v3 peer abandoned by disconnecting expires on its
         (short) TTL and is re-issued under a bumped epoch later. A v4
         peer sees trace ids stamped on its lease and gets its
         piggybacked telemetry absorbed into the fleet view. *)
      let fd = Wire.connect ~attempts:40 ~delay_s:0.1 addr in
      let conn = Wire.conn fd in
      send conn
        (Protocol.Hello { version = Protocol.version; worker = "manual"; fingerprint });
      (match recv conn with
      | Protocol.Welcome { version } ->
          Alcotest.(check int) "v4 negotiated" Protocol.version version
      | _ -> Alcotest.fail "expected welcome");
      send conn Protocol.Request_shard;
      let (shard, epoch, start, len), ext =
        match recv_ext conn with
        | Protocol.Assign { shard; epoch; start; len }, ext -> ((shard, epoch, start, len), ext)
        | _ -> Alcotest.fail "expected an assignment"
      in
      (match ext.Protocol.ext_trace with
      | Some (tid, sid) ->
          Alcotest.(check string) "campaign trace id stamped"
            (Fmc_obs.Traceid.trace_id ~fingerprint)
            tid;
          Alcotest.(check string) "shard span id stamped"
            (Fmc_obs.Traceid.span_id ~fingerprint ~shard)
            sid
      | None -> Alcotest.fail "a v4 assign must carry trace ids");
      (* Heartbeat with a telemetry batch piggybacked on the side. *)
      let wreg = Fmc_obs.Metrics.create () in
      Fmc_obs.Metrics.add (Fmc_obs.Metrics.counter wreg "fmc_dist_worker_marker_total") 2.;
      let batch =
        Fmc_obs.Telemetry.make
          ~trace_id:(Fmc_obs.Traceid.trace_id ~fingerprint)
          ~metrics:(Fmc_obs.Metrics.snapshot wreg)
          ~spans:
            [
              {
                Fmc_obs.Telemetry.ss_span_id = Fmc_obs.Traceid.span_id ~fingerprint ~shard;
                ss_event =
                  {
                    Fmc_obs.Span.ev_name = Printf.sprintf "shard-%d" shard;
                    ev_cat = "dist";
                    ev_tid = 1;
                    ev_ts_us = 5.;
                    ev_dur_us = 3.;
                  };
              };
            ]
          ()
      in
      let ext =
        {
          Protocol.no_extension with
          Protocol.ext_telemetry = Some (Fmc_obs.Telemetry.encode batch);
        }
      in
      let tag, payload =
        Protocol.encode_client_ext ~ext (Protocol.Heartbeat { shard; epoch; samples_done = 1 })
      in
      Wire.write_frame conn ~tag payload;
      (match recv conn with
      | Protocol.Ack { accepted = true; _ } -> ()
      | _ -> Alcotest.fail "live heartbeat must be acked");
      (* The scrape surface reflects the absorbed batch. *)
      (match List.find_opt (fun w -> w.Coordinator.w_name = "manual") (v.Coordinator.vw_workers ()) with
      | Some w ->
          Alcotest.(check int) "span summary absorbed" 1 w.Coordinator.w_spans;
          Alcotest.(check bool) "wall clock stamped" true (w.Coordinator.w_last_wall > 0.)
      | None -> Alcotest.fail "manual worker missing from the fleet view");
      Alcotest.(check bool) "/metrics merges the worker snapshot" true
        (contains (v.Coordinator.vw_metrics ()) "fmc_dist_worker_marker_total 2");
      let health = v.Coordinator.vw_health () in
      Alcotest.(check int) "shards total" (Array.length plan) health.Coordinator.h_shards_total;
      Alcotest.(check bool) "not finished yet" false health.Coordinator.h_finished;
      (* Complete the leased shard for real, telemetry on the side again. *)
      let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
      let tag, payload =
        Protocol.encode_client_ext ~ext
          (Protocol.Shard_done
             {
               shard;
               epoch;
               tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot;
               quarantined = [];
             })
      in
      Wire.write_frame conn ~tag payload;
      (match recv conn with
      | Protocol.Ack { accepted = true; _ } -> ()
      | _ -> Alcotest.fail "shard result must be accepted");
      Wire.close conn;
      (* A real v4 worker (with its own obs) finishes the campaign. *)
      let wobs =
        Fmc_obs.Obs.create ~metrics:(Fmc_obs.Metrics.create ())
          ~tracer:(Fmc_obs.Span.create ()) ()
      in
      let wcfg =
        {
          (Worker.default_config ~addr ~worker_name:"v4-worker") with
          Worker.heartbeat_every = 7;
          retry_delay_s = 0.1;
        }
      in
      let accepted = Worker.run ~obs:wobs wcfg ~fingerprint e prep ~seed in
      Alcotest.(check int) "worker ran the remaining shards" (Array.length plan - 1) accepted;
      Thread.join server;
      let oc = match !outcome with Some o -> o | None -> Alcotest.fail "no outcome" in
      let dist =
        match Merge.report_of_blobs ~strategy:(Sampler.name prep) oc.Coordinator.oc_shards with
        | Ok r -> r
        | Error msg -> Alcotest.failf "merge failed: %s" msg
      in
      (* The acceptance bar: byte-identical JSON against the
         single-process sharded reference, telemetry and all. *)
      let reference = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
      Alcotest.(check string) "report JSON byte-identical under telemetry"
        (Export.report_json reference.Campaign.report)
        (Export.report_json dist);
      (* The stitched fleet trace carries both workers on their own
         tracks next to the coordinator's. *)
      let trace = v.Coordinator.vw_trace_json () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " on the stitched trace") true (contains trace needle))
        [ "process_name"; "manual"; "v4-worker"; "\"pid\":1"; "\"pid\":2"; "\"pid\":3" ])

(* ------------------------------------------------------------------ *)
(* Untrusted workers (protocol v5): the canonical result digest gates
   acceptance, the seeded audit re-executes accepted shards, and a
   quorum verdict quarantines a proven liar — with the merged report
   still byte-identical to the single-process reference. *)

let send_with_digest conn ~digest msg =
  let ext = { Protocol.no_extension with Protocol.ext_digest = Some digest } in
  let tag, payload = Protocol.encode_client_ext ~ext msg in
  Wire.write_frame conn ~tag payload

(* Flip the last digit of the tally's first line ("samples %d"): the
   blob still decodes — Tally.of_string does not cross-check the header
   against the strata — but the canonical digest moves. The cheapest
   convincing lie. *)
let mutate_tally blob =
  let eol = String.index blob '\n' in
  let b = Bytes.of_string blob in
  Bytes.set b (eol - 1) (if Bytes.get b (eol - 1) = '0' then '1' else '0');
  Bytes.to_string b

let test_loopback_lying_worker_quarantined () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let samples = 90 and shard_size = 30 and seed = 7 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let fingerprint =
    Protocol.fingerprint ~strategy:(Sampler.name prep) ~benchmark:"write" ~samples ~seed
      ~shard_size ~sample_budget:None ()
  in
  let sock_path = Filename.temp_file "fmc-dist" ".sock" in
  Sys.remove sock_path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists sock_path then Sys.remove sock_path)
    (fun () ->
      let addr = Wire.Unix_path sock_path in
      let config =
        {
          (Coordinator.default_config addr) with
          Coordinator.ttl_s = 2.0;
          linger_s = 2.0;
          audit_rate = 1.0;
        }
      in
      let reg = Fmc_obs.Metrics.create () in
      let obs = Fmc_obs.Obs.create ~metrics:reg () in
      let outcome = ref None in
      let server =
        Thread.create
          (fun () -> outcome := Some (Coordinator.serve ~obs config ~fingerprint ~plan))
          ()
      in
      let fd = Wire.connect ~attempts:40 ~delay_s:0.1 addr in
      let conn = Wire.conn fd in
      send conn (Protocol.Hello { version = Protocol.version; worker = "mallory"; fingerprint });
      (match recv conn with
      | Protocol.Welcome _ -> ()
      | _ -> Alcotest.fail "expected welcome");
      (* Leg 1: a forged digest over an honest payload. Refused before
         anything is committed; the lease goes back in the pool. *)
      send conn Protocol.Request_shard;
      let shard, epoch, start, len =
        match recv conn with
        | Protocol.Assign { shard; epoch; start; len } -> (shard, epoch, start, len)
        | _ -> Alcotest.fail "expected an assignment"
      in
      let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
      send_with_digest conn ~digest:"feedfacefeedface"
        (Protocol.Shard_done
           { shard; epoch; tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot; quarantined = [] });
      (match recv conn with
      | Protocol.Ack { accepted = false; reason } ->
          Alcotest.(check bool) "mismatch named in the refusal" true (contains reason "digest")
      | _ -> Alcotest.fail "a forged digest must be refused");
      (* Leg 2: a consistent lie — mutate the tally, then digest the
         mutated bytes. Passes the digest gate; only re-execution by
         someone honest can catch it. *)
      send conn Protocol.Request_shard;
      let shard, epoch, start, len =
        match recv conn with
        | Protocol.Assign { shard; epoch; start; len } -> (shard, epoch, start, len)
        | _ -> Alcotest.fail "expected a second assignment"
      in
      let sh = Campaign.run_shard e prep ~seed ~shard ~start ~len in
      let lie = mutate_tally (Ssf.Tally.to_string sh.Campaign.sh_snapshot) in
      send_with_digest conn
        ~digest:(Fmc_audit.Audit.Check.result_digest ~tally:lie ~quarantined:[])
        (Protocol.Shard_done { shard; epoch; tally = lie; quarantined = [] });
      (match recv conn with
      | Protocol.Ack { accepted = true; _ } -> ()
      | _ -> Alcotest.fail "a consistent lie passes the digest gate");
      Wire.close conn;
      (* The honest worker drains the remaining primaries, then the
         audit queue. Auditing mallory's shard disputes; being the only
         healthy worker left, it also arbitrates — and the verdict
         replaces the lie and quarantines mallory. *)
      let wcfg =
        {
          (Worker.default_config ~addr ~worker_name:"honest") with
          Worker.heartbeat_every = 7;
          retry_delay_s = 0.1;
        }
      in
      let accepted = Worker.run wcfg ~fingerprint e prep ~seed in
      Alcotest.(check bool) "honest worker ran primaries and audits" true
        (accepted >= Array.length plan - 1);
      (* Quarantine is terminal: mallory's reconnect is rejected at hello. *)
      let fd = Wire.connect ~attempts:40 ~delay_s:0.1 addr in
      let conn = Wire.conn fd in
      send conn (Protocol.Hello { version = Protocol.version; worker = "mallory"; fingerprint });
      (match recv conn with
      | Protocol.Reject { reason } ->
          Alcotest.(check bool) "quarantine named in the rejection" true
            (contains reason "quarantine")
      | _ -> Alcotest.fail "a quarantined worker must be rejected at hello");
      Wire.close conn;
      Thread.join server;
      let oc = match !outcome with Some o -> o | None -> Alcotest.fail "no outcome" in
      Alcotest.(check int) "all shard results" (Array.length plan)
        (List.length oc.Coordinator.oc_shards);
      let dist =
        match Merge.report_of_blobs ~strategy:(Sampler.name prep) oc.Coordinator.oc_shards with
        | Ok r -> r
        | Error msg -> Alcotest.failf "merge failed: %s" msg
      in
      let reference = Campaign.estimate_sharded e prep ~samples ~seed ~shard_size in
      Alcotest.(check string) "report JSON byte-identical despite the liar"
        (Export.report_json reference.Campaign.report)
        (Export.report_json dist);
      let snap = Fmc_obs.Metrics.snapshot reg in
      let metric name =
        match Fmc_obs.Metrics.find snap name with
        | Some (Fmc_obs.Metrics.Counter v) -> v
        | _ -> Alcotest.failf "missing counter %s" name
      in
      Alcotest.(check bool) "forged digest counted" true
        (metric "fmc_audit_mismatches_total" >= 1.);
      Alcotest.(check bool) "every accepted shard audited" true
        (metric "fmc_audit_audits_total" >= float_of_int (Array.length plan));
      Alcotest.(check bool) "dispute escalated to arbitration" true
        (metric "fmc_audit_disputes_total" >= 1.);
      match Fmc_obs.Metrics.find snap "fmc_audit_quarantined_workers" with
      | Some (Fmc_obs.Metrics.Gauge v) -> exact "exactly one quarantined worker" 1. v
      | _ -> Alcotest.fail "missing gauge fmc_audit_quarantined_workers")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dist"
    [
      ( "rng",
        [
          Alcotest.test_case "substream deterministic" `Quick test_substream_deterministic;
          Alcotest.test_case "substreams disjoint" `Quick test_substream_disjoint;
        ] );
      ( "codec",
        [
          Alcotest.test_case "tally round-trip" `Quick test_tally_codec_roundtrip;
          Alcotest.test_case "quarantine round-trip" `Quick test_quarantine_codec_roundtrip;
          Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
        ] );
      ( "lease",
        [
          Alcotest.test_case "lifecycle and fencing" `Quick test_lease_lifecycle;
          Alcotest.test_case "wait when all leased" `Quick test_lease_wait_when_all_leased;
          Alcotest.test_case "exactly-once accounting" `Quick test_fencing_exactly_once;
        ] );
      ("ckpt", [ Alcotest.test_case "save/load round-trip" `Quick test_ckpt_roundtrip ]);
      ("merge", [ Alcotest.test_case "order invariant" `Quick test_merge_order_invariant ]);
      ( "loopback",
        [
          Alcotest.test_case "dead worker, bit-exact merge" `Quick
            test_loopback_campaign_with_dead_worker;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "version negotiation" `Quick test_v4_negotiation;
          Alcotest.test_case "telemetry piggyback, bit-exact merge" `Quick
            test_loopback_fleet_telemetry;
        ] );
      ( "audit",
        [
          Alcotest.test_case "digest extension round-trip" `Quick
            test_digest_extension_roundtrip;
          Alcotest.test_case "lying worker quarantined, bit-exact merge" `Quick
            test_loopback_lying_worker_quarantined;
        ] );
    ]
