(* Tests for the pluggable fault-model subsystem (Fmc_fault): the
   registry's parameter codec and typed errors, byte-identity of the
   default model against the committed pre-subsystem reference reports,
   per-model determinism (locally, sharded and through Fmc_dist with a
   dead worker), the prune/inject soundness guard, the campaign
   checkpoint's model line (v5) with v4 back-compat, and the
   fault-model component of distributed fingerprints and spec lines. *)

module Programs = Fmc_isa.Programs
module Model = Fmc_fault.Model
module Registry = Fmc_fault.Registry
open Fmc
open Fmc_dist

let ctx = lazy (Experiments.context ())
let engine () = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write
let engine_read () = Experiments.engine_for (Lazy.force ctx) Programs.illegal_read

let prepare strategy =
  let e = engine () in
  Sampler.prepare ~static_vuln:(Engine.static_vulnerable e) strategy
    (Experiments.default_attack (Lazy.force ctx))
    (Experiments.precharac (Lazy.force ctx))
    ~placement:(Engine.placement e)

let no_signals = { Campaign.default_config with Campaign.handle_signals = false }

let model spec =
  match Registry.parse spec with
  | Ok m -> m
  | Error e -> Alcotest.failf "model %S did not parse: %s" spec (Registry.error_message e)

(* Strict structural equality through the export codec: every field the
   report carries, in canonical bytes. *)
let check_reports_equal what (a : Ssf.report) (b : Ssf.report) =
  Alcotest.(check string) what (Export.report_json a) (Export.report_json b)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let with_tmp name f =
  let path = Filename.temp_file "fmc-fault" name in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let contains hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Registry: codec, canonicalization, typed errors *)

let test_registry_canonical () =
  Alcotest.(check (list string))
    "four registered models"
    [ "disc-transient"; "seu-burst"; "instr-skip"; "double-strike" ]
    Registry.names;
  (* Explicitly-spelled defaults canonicalize away... *)
  Alcotest.(check string) "default bits collapse" "seu-burst" (Model.canonical (model "seu-burst:bits=2"));
  Alcotest.(check string) "default gap collapses" "double-strike" (Model.canonical (model "double-strike:gap=2"));
  Alcotest.(check string) "skip mode collapses" "instr-skip" (Model.canonical (model "instr-skip:mode=skip"));
  (* ...non-defaults survive, sorted by key, and round-trip. *)
  let m = model "instr-skip:mode=corrupt,mask=255" in
  Alcotest.(check string) "params sorted" "instr-skip:mask=255,mode=corrupt" (Model.canonical m);
  Alcotest.(check string) "canonical round-trips" (Model.canonical m)
    (Model.canonical (model (Model.canonical m)));
  Alcotest.(check string) "metric name sanitized" "seu_burst_bits_4"
    (Model.metric_name (model "seu-burst:bits=4"));
  (* The default model is native: no injector, prunable. *)
  let disc = model "disc-transient" in
  Alcotest.(check bool) "disc has no injector" true (disc.Model.inject = None);
  Alcotest.(check bool) "disc is prunable" true disc.Model.prunable;
  List.iter
    (fun name ->
      let m = model name in
      Alcotest.(check bool) (name ^ " carries an injector") true (m.Model.inject <> None);
      Alcotest.(check bool) (name ^ " is not prunable") false m.Model.prunable;
      Alcotest.(check int) (name ^ " draws no rng") 0 m.Model.rng_draws)
    [ "seu-burst"; "instr-skip"; "double-strike" ]

let test_registry_errors () =
  let unknown = function Error (Registry.Unknown_model _) -> true | _ -> false in
  let bad = function Error (Registry.Bad_params _) -> true | _ -> false in
  Alcotest.(check bool) "unknown model" true (unknown (Registry.parse "zap-gun"));
  Alcotest.(check bool) "unknown name with params" true (unknown (Registry.parse "zap:p=1"));
  Alcotest.(check bool) "unknown key" true (bad (Registry.parse "seu-burst:gap=1"));
  Alcotest.(check bool) "duplicate key" true (bad (Registry.parse "seu-burst:bits=2,bits=3"));
  Alcotest.(check bool) "bad integer" true (bad (Registry.parse "seu-burst:bits=lots"));
  Alcotest.(check bool) "out of range" true (bad (Registry.parse "seu-burst:bits=65"));
  Alcotest.(check bool) "missing =" true (bad (Registry.parse "seu-burst:bits"));
  Alcotest.(check bool) "bad mode" true (bad (Registry.parse "instr-skip:mode=random"));
  Alcotest.(check bool) "mask needs corrupt" true (bad (Registry.parse "instr-skip:mask=255"));
  Alcotest.(check bool) "disc takes no params" true (bad (Registry.parse "disc-transient:x=1"));
  Alcotest.(check bool) "valid helper" true (Registry.valid "double-strike:gap=9");
  Alcotest.(check bool) "invalid helper" false (Registry.valid "double-strike:gap=0");
  (match Registry.parse "zap-gun" with
  | Error e ->
      Alcotest.(check bool) "message names the model" true
        (contains (Registry.error_message e) "zap-gun")
  | Ok _ -> Alcotest.fail "zap-gun must not parse")

(* ------------------------------------------------------------------ *)
(* Byte-identity of the default model against the pre-subsystem
   reference reports committed under test/ref (generated at the commit
   before the fault-model refactor landed). *)

(* `dune runtest` runs the executable from test/'s build dir; `dune exec`
   runs it from wherever it was invoked — accept both. *)
let fixture name =
  let local = Filename.concat "ref" name in
  let path = if Sys.file_exists local then local else Filename.concat "test" local in
  read_file path

let test_byte_identity_plain () =
  let prep = prepare Sampler.default_mixed in
  let w = Ssf.estimate (engine ()) prep ~samples:400 ~seed:11 in
  Alcotest.(check string) "write plain" (fixture "plain-write.json") (Export.report_json w ^ "\n");
  let r = Ssf.estimate (engine_read ()) prep ~samples:400 ~seed:11 in
  Alcotest.(check string) "read plain" (fixture "plain-read.json") (Export.report_json r ^ "\n")

let test_byte_identity_sharded () =
  let prep = prepare Sampler.default_mixed in
  let w = Campaign.estimate_sharded (engine ()) prep ~samples:400 ~seed:11 ~shard_size:100 in
  Alcotest.(check string) "write sharded" (fixture "sharded-write.json")
    (Export.report_json w.Campaign.report ^ "\n");
  let r =
    Campaign.estimate_sharded (engine_read ()) prep ~samples:400 ~seed:11 ~shard_size:100
  in
  Alcotest.(check string) "read sharded" (fixture "sharded-read.json")
    (Export.report_json r.Campaign.report ^ "\n")

(* ------------------------------------------------------------------ *)
(* Per-model determinism: all builtin injectors draw zero RNG, so the
   same seed must reproduce the same report — plain and sharded. *)

let test_per_model_determinism () =
  let prep = prepare Sampler.default_mixed in
  let e = engine () in
  List.iter
    (fun spec ->
      let inject = (model spec).Model.inject in
      let a = Ssf.estimate ?inject e prep ~samples:150 ~seed:23 in
      let b = Ssf.estimate ?inject e prep ~samples:150 ~seed:23 in
      check_reports_equal (spec ^ " plain deterministic") a b;
      let sa = Campaign.estimate_sharded ?inject e prep ~samples:150 ~seed:23 ~shard_size:50 in
      let sb = Campaign.estimate_sharded ?inject e prep ~samples:150 ~seed:23 ~shard_size:50 in
      check_reports_equal (spec ^ " sharded deterministic") sa.Campaign.report
        sb.Campaign.report)
    [ "seu-burst"; "seu-burst:bits=8"; "instr-skip"; "instr-skip:mode=corrupt"; "double-strike" ]

(* ------------------------------------------------------------------ *)
(* Soundness guard: masking certificates only cover disc-transient, so
   every prune+inject combination is refused with a typed error. *)

let test_prune_inject_refused () =
  let prep = prepare Sampler.default_mixed in
  let e = engine () in
  let inject = Option.get (model "seu-burst").Model.inject in
  let refused f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "estimate refuses" true
    (refused (fun () ->
         Ssf.estimate ~prune:(fun _ -> false) ~inject e prep ~samples:10 ~seed:1));
  Alcotest.(check bool) "estimate_sharded refuses" true
    (refused (fun () ->
         Campaign.estimate_sharded
           ~prune:(fun _ -> false)
           ~inject e prep ~samples:10 ~seed:1 ~shard_size:5));
  Alcotest.(check bool) "run refuses" true
    (refused (fun () ->
         Campaign.run ~config:no_signals
           ~prune:(fun _ -> false)
           ~inject e prep ~samples:10 ~seed:1))

(* ------------------------------------------------------------------ *)
(* Campaign checkpoints: v5 records the model; resuming under another
   model is refused; a hand-built v4 checkpoint (no model line) still
   reads, defaulting to disc-transient. *)

let test_checkpoint_records_model () =
  with_tmp "ckpt" @@ fun path ->
  let prep = prepare Sampler.default_mixed in
  let e = engine () in
  let inject = (model "seu-burst:bits=3").Model.inject in
  let uninterrupted = Campaign.run ~config:no_signals ?inject e prep ~samples:120 ~seed:9 in
  let config =
    { no_signals with Campaign.checkpoint_path = Some path; Campaign.checkpoint_every = 20 }
  in
  let half =
    Campaign.run ~config ?inject ~stop:(fun i -> i >= 60) e prep ~samples:120 ~seed:9
  in
  Alcotest.(check bool) "interrupted" true (half.Campaign.status = Campaign.Interrupted);
  let raw = read_file path in
  Alcotest.(check bool) "v5 header" true
    (String.length raw > 18 && String.sub raw 0 18 = "faultmc-campaign 5");
  Alcotest.(check bool) "model line present" true
    (contains raw "\nmodel seu-burst:bits=3\n");
  (* Wrong model at resume: refused before any sample is evaluated. *)
  Alcotest.(check bool) "model mismatch refused" true
    (try
       ignore (Campaign.resume ~config:no_signals e prep ~path);
       false
     with Campaign.Checkpoint_corrupt { path = p; _ } -> p = path);
  let resumed = Campaign.resume ~config:no_signals ?inject e prep ~path in
  Alcotest.(check bool) "resumed to completion" true
    (resumed.Campaign.status = Campaign.Completed);
  check_reports_equal "resume bit-exact under seu-burst" uninterrupted.Campaign.report
    resumed.Campaign.report

let test_checkpoint_v4_back_compat () =
  with_tmp "v4" @@ fun path ->
  let prep = prepare Sampler.default_mixed in
  let e = engine () in
  let uninterrupted = Campaign.run ~config:no_signals e prep ~samples:120 ~seed:9 in
  let config =
    { no_signals with Campaign.checkpoint_path = Some path; Campaign.checkpoint_every = 20 }
  in
  let half = Campaign.run ~config ~stop:(fun i -> i >= 60) e prep ~samples:120 ~seed:9 in
  Alcotest.(check bool) "interrupted" true (half.Campaign.status = Campaign.Interrupted);
  (* Downgrade the fresh v5 file to the v4 format a pre-fault-model
     build wrote: version 4, no model line, CRC over the new body. *)
  let raw = read_file path in
  let starts_with prefix l =
    String.length l >= String.length prefix && String.sub l 0 (String.length prefix) = prefix
  in
  let body_lines =
    String.split_on_char '\n' raw
    |> List.filter (fun l -> not (starts_with "model " l || starts_with "crc " l))
    |> List.map (fun l -> if l = "faultmc-campaign 5" then "faultmc-campaign 4" else l)
  in
  (* split_on_char leaves a trailing "" for the final newline, so the
     rejoin reproduces the byte-exact newline-terminated body. *)
  let body = String.concat "\n" body_lines in
  let oc = open_out_bin path in
  output_string oc body;
  Printf.fprintf oc "crc %08x\n" (Fmc_prelude.Crc32.string body);
  close_out oc;
  let resumed = Campaign.resume ~config:no_signals e prep ~path in
  Alcotest.(check bool) "v4 resumed to completion" true
    (resumed.Campaign.status = Campaign.Completed);
  check_reports_equal "v4 resume bit-exact" uninterrupted.Campaign.report
    resumed.Campaign.report

(* ------------------------------------------------------------------ *)
(* Distributed identity: the fingerprint only grows a model component
   when it deviates from the default, and spec lines stay readable in
   both the 6-word (pre-model) and 7-word forms. *)

let test_fingerprint_model_component () =
  let fp ?fault_model () =
    Protocol.fingerprint ?fault_model ~strategy:"mixed" ~benchmark:"write" ~samples:100 ~seed:1
      ~shard_size:25 ~sample_budget:None ()
  in
  Alcotest.(check string) "default model leaves the fingerprint unchanged" (fp ())
    (fp ~fault_model:"disc-transient" ());
  let seu = fp ~fault_model:"seu-burst:bits=4" () in
  Alcotest.(check bool) "non-default model changes the fingerprint" true (seu <> fp ());
  Alcotest.(check bool) "component is appended" true
    (let suffix = " model=seu-burst:bits=4" in
     let n = String.length suffix in
     String.length seu > n && String.sub seu (String.length seu - n) n = suffix)

let test_spec_line_codec () =
  let spec =
    {
      Protocol.sp_benchmark = "illegal-write";
      sp_strategy = "mixed";
      sp_samples = 100;
      sp_seed = 7;
      sp_shard_size = 25;
      sp_sample_budget = Some 4000;
      sp_fault_model = "double-strike:gap=5";
    }
  in
  (match Protocol.spec_of_line (Protocol.spec_line spec) with
  | Ok rt -> Alcotest.(check bool) "7-word round trip" true (rt = spec)
  | Error msg -> Alcotest.failf "round trip failed: %s" msg);
  (* A WAL line written before the model field existed. *)
  (match
     Protocol.spec_of_line "benchmark=illegal-write strategy=mixed samples=100 seed=7 shard_size=25 budget=-"
   with
  | Ok old ->
      Alcotest.(check string) "pre-model line defaults the model" "disc-transient"
        old.Protocol.sp_fault_model
  | Error msg -> Alcotest.failf "6-word line must parse: %s" msg);
  match Protocol.spec_of_line "benchmark=x strategy=y samples=1 seed=1 shard_size=1 budget=- nonsense=1" with
  | Ok _ -> Alcotest.fail "a 7th word must be a model field"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Loopback distributed campaign under a non-default model: a worker
   announcing the default model is rejected at the handshake; a worker
   dies mid-run (lease expiry + epoch fencing); the healthy worker's
   merged report is bit-identical to the local sharded reference under
   the same injector. *)

let send conn msg =
  let tag, payload = Protocol.encode_client msg in
  Wire.write_frame conn ~tag payload

let recv conn =
  let tag, payload = Wire.read_frame conn in
  match Protocol.decode_server tag payload with
  | Ok m -> m
  | Error msg -> Alcotest.failf "server sent garbage: %s" msg

let test_loopback_model_campaign () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let m = model "seu-burst:bits=4" in
  let inject = m.Model.inject in
  let samples = 90 and shard_size = 30 and seed = 13 in
  let plan = Ssf.shard_plan ~samples ~shard_size in
  let fp ?fault_model () =
    Protocol.fingerprint ?fault_model ~strategy:(Sampler.name prep) ~benchmark:"write" ~samples
      ~seed ~shard_size ~sample_budget:None ()
  in
  let fingerprint = fp ~fault_model:(Model.canonical m) () in
  let sock_path = Filename.temp_file "fmc-fault-dist" ".sock" in
  Sys.remove sock_path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists sock_path then Sys.remove sock_path)
    (fun () ->
      let addr = Wire.Unix_path sock_path in
      let config =
        { (Coordinator.default_config addr) with Coordinator.ttl_s = 1.0; linger_s = 0.5 }
      in
      let outcome = ref None in
      let server =
        Thread.create (fun () -> outcome := Some (Coordinator.serve config ~fingerprint ~plan)) ()
      in
      (* A worker configured for the default model: its fingerprint
         lacks the model component, so the handshake refuses it. *)
      let fd = Wire.connect ~attempts:40 ~delay_s:0.1 addr in
      let conn = Wire.conn fd in
      send conn
        (Protocol.Hello { version = Protocol.version; worker = "wrong-model"; fingerprint = fp () });
      (match recv conn with
      | Protocol.Reject _ -> ()
      | _ -> Alcotest.fail "model mismatch must be rejected at hello");
      Wire.close conn;
      (* A worker under the right model takes a lease and dies. *)
      let fd = Wire.connect ~attempts:40 ~delay_s:0.1 addr in
      let conn = Wire.conn fd in
      send conn (Protocol.Hello { version = Protocol.version; worker = "dying"; fingerprint });
      (match recv conn with
      | Protocol.Welcome _ -> ()
      | _ -> Alcotest.fail "expected welcome");
      send conn Protocol.Request_shard;
      let shard, epoch, start, len =
        match recv conn with
        | Protocol.Assign { shard; epoch; start; len } -> (shard, epoch, start, len)
        | _ -> Alcotest.fail "expected an assignment"
      in
      let sh = Campaign.run_shard ?inject e prep ~seed ~shard ~start ~len in
      let blob = Ssf.Tally.to_string sh.Campaign.sh_snapshot in
      Thread.delay 1.6 (* past the TTL: the coordinator expires the lease *);
      send conn (Protocol.Shard_done { shard; epoch; tally = blob; quarantined = [] });
      (match recv conn with
      | Protocol.Ack { accepted = false; _ } -> ()
      | _ -> Alcotest.fail "zombie result must be fenced");
      Wire.close conn;
      (* The healthy worker runs the campaign under the injector. *)
      let wcfg =
        {
          (Worker.default_config ~addr ~worker_name:"healthy") with
          Worker.heartbeat_every = 7;
          retry_delay_s = 0.1;
        }
      in
      let accepted = Worker.run ?inject wcfg ~fingerprint e prep ~seed in
      Alcotest.(check int) "healthy worker ran every shard" (Array.length plan) accepted;
      Thread.join server;
      let oc = match !outcome with Some o -> o | None -> Alcotest.fail "no outcome" in
      let dist =
        match Merge.report_of_blobs ~strategy:(Sampler.name prep) oc.Coordinator.oc_shards with
        | Ok r -> r
        | Error msg -> Alcotest.failf "merge failed: %s" msg
      in
      let reference = Campaign.estimate_sharded ?inject e prep ~samples ~seed ~shard_size in
      check_reports_equal "distributed seu-burst bit-identical to local reference"
        reference.Campaign.report dist)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fmc_fault"
    [
      ( "registry",
        [
          Alcotest.test_case "canonicalization and round trips" `Quick test_registry_canonical;
          Alcotest.test_case "typed errors" `Quick test_registry_errors;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "plain reports match pre-subsystem reference" `Slow
            test_byte_identity_plain;
          Alcotest.test_case "sharded reports match pre-subsystem reference" `Slow
            test_byte_identity_sharded;
        ] );
      ( "models",
        [
          Alcotest.test_case "per-model determinism" `Slow test_per_model_determinism;
          Alcotest.test_case "prune+inject refused" `Quick test_prune_inject_refused;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "v5 records the model; mismatch refused" `Slow
            test_checkpoint_records_model;
          Alcotest.test_case "v4 checkpoint still reads" `Slow test_checkpoint_v4_back_compat;
        ] );
      ( "dist",
        [
          Alcotest.test_case "fingerprint model component" `Quick test_fingerprint_model_component;
          Alcotest.test_case "spec line codec (6 and 7 words)" `Quick test_spec_line_codec;
          Alcotest.test_case "loopback model campaign with dead worker" `Slow
            test_loopback_model_campaign;
        ] );
    ]
