(* Tests for the gate-level simulator: cycle semantics, switching
   signatures, and the transient (SET) engine's three masking effects. *)

module Hdl = Fmc_hdl.Hdl
module Vec = Fmc_hdl.Vec
module N = Fmc_netlist.Netlist
module K = Fmc_netlist.Kind
module B = Fmc_netlist.Builder
module Sim = Fmc_gatesim.Cycle_sim
module Sig = Fmc_gatesim.Signature
module Tr = Fmc_gatesim.Transient
module Pattern = Fmc_gatesim.Pattern
module Bitvec = Fmc_prelude.Bitvec

(* ------------------------------------------------------------------ *)
(* Cycle_sim *)

let test_cycle_sim_comb () =
  let b = B.create () in
  let x = B.add_input b ~name:"x" in
  let y = B.add_input b ~name:"y" in
  let g = B.add_gate b K.And [| x; y |] in
  B.set_output b ~name:"o" g;
  let net = N.of_builder b in
  let sim = Sim.create net in
  let check a bb expect =
    Sim.set_input sim x a;
    Sim.set_input sim y bb;
    Sim.eval_comb sim;
    Alcotest.(check bool) "and output" expect (Sim.value sim g)
  in
  check false false false;
  check true false false;
  check true true true

let test_cycle_sim_input_validation () =
  let b = B.create () in
  let x = B.add_input b ~name:"x" in
  let g = B.add_gate b K.Not [| x |] in
  B.set_output b ~name:"o" g;
  let net = N.of_builder b in
  let sim = Sim.create net in
  Alcotest.check_raises "driving a gate" (Invalid_argument "Cycle_sim.set_input: not a primary input")
    (fun () -> Sim.set_input sim g true)

let test_cycle_sim_snapshot_restore () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"cnt" ~width:8 ~init:0 in
  Hdl.connect r (Vec.add (Hdl.q r) (Vec.of_int ctx ~width:8 1));
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  for _ = 1 to 5 do
    Sim.step sim
  done;
  let snap = Sim.snapshot sim in
  Alcotest.(check int) "at 5" 5 (Sim.read_group sim "cnt");
  for _ = 1 to 3 do
    Sim.step sim
  done;
  Alcotest.(check int) "at 8" 8 (Sim.read_group sim "cnt");
  Sim.restore sim snap;
  Alcotest.(check int) "restored to 5" 5 (Sim.read_group sim "cnt");
  Alcotest.check_raises "bad snapshot" (Invalid_argument "Cycle_sim.restore: snapshot length mismatch")
    (fun () -> Sim.restore sim [| true |])

let test_cycle_sim_flip () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"r" ~width:2 ~init:0 in
  Hdl.connect r (Hdl.q r);
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  let dff0 = (N.register_group net "r").(0) in
  Sim.flip sim dff0;
  Alcotest.(check int) "bit 0 flipped" 1 (Sim.read_group sim "r");
  Sim.flip sim dff0;
  Alcotest.(check int) "flipped back" 0 (Sim.read_group sim "r")

(* ------------------------------------------------------------------ *)
(* Signature *)

let test_signature_counter () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"c" ~width:2 ~init:0 in
  Hdl.connect r (Vec.add (Hdl.q r) (Vec.of_int ctx ~width:2 1));
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  let rec_ = Sig.record sim ~cycles:8 ~drive:(fun _ _ -> ()) in
  let bit0 = (N.register_group net "c").(0) in
  let bit1 = (N.register_group net "c").(1) in
  (* Counter bit0: 0 1 0 1 0 1 0 1 -> switches every cycle after the first. *)
  Alcotest.(check string) "bit0 values" "01010101" (Bitvec.to_string (Sig.values rec_ bit0));
  Alcotest.(check string) "bit0 switches" "01111111" (Bitvec.to_string (Sig.signature rec_ bit0));
  Alcotest.(check string) "bit1 values" "00110011" (Bitvec.to_string (Sig.values rec_ bit1));
  Alcotest.(check string) "bit1 switches" "00101010" (Bitvec.to_string (Sig.signature rec_ bit1));
  (* bit0 switches whenever bit1 does -> correlation at shift 0 between bit1
     and bit0 is 1.0 in the direction |ss(b1) & ss(b0)| / |ss(b1)|. *)
  Alcotest.(check (float 1e-9)) "corr" 1.0 (Sig.correlation rec_ ~node:bit1 ~rs:bit0 ~shift:0)

(* ------------------------------------------------------------------ *)
(* Transient *)

(* Chain: input -> not g1 -> and g2 (with input en) -> dff r.
   Strike g1; see whether r latches depending on en / timing. *)
type chain = {
  net : N.t;
  sim : Sim.t;
  g1 : N.node;
  g2 : N.node;
  r_dff : N.node;
  inp : N.node;
  en : N.node;
}

let make_chain () =
  let b = B.create () in
  let inp = B.add_input b ~name:"i" in
  let en = B.add_input b ~name:"en" in
  let g1 = B.add_gate b K.Not [| inp |] in
  let g2 = B.add_gate b K.And [| g1; en |] in
  let r = B.add_dff b ~group:"r" ~bit:0 ~init:false in
  B.connect_dff b r ~d:g2;
  B.set_output b ~name:"o" g2;
  let net = N.of_builder b in
  { net; sim = Sim.create net; g1; g2; r_dff = r; inp; en }

let base_config net =
  let c = Tr.default_config net in
  (* Small deterministic numbers for testability. *)
  {
    c with
    Tr.clock_period = 1000.;
    setup_time = 30.;
    hold_time = 20.;
    delay_inv = 40.;
    delay_simple = 60.;
    delay_complex = 90.;
    attenuation = 20.;
    attenuation_threshold = 120.;
    min_width = 30.;
  }

let test_transient_latches_in_window () =
  let c = make_chain () in
  Sim.set_input c.sim c.inp false;
  Sim.set_input c.sim c.en true;
  (* en=1 sensitizes the AND. *)
  Sim.eval_comb c.sim;
  let config = base_config c.net in
  (* Strike g1 at t=900 width 150: pulse reaches g2 output at 960, spans
     [960, 1110) which covers the window [970, 1020]. *)
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = 900.; width = 150. } ] in
  Alcotest.(check (array int)) "latched" [| c.r_dff |] r.Tr.latched;
  Alcotest.(check int) "seeded" 1 r.Tr.seeded

let test_transient_logical_masking () =
  let c = make_chain () in
  Sim.set_input c.sim c.inp false;
  Sim.set_input c.sim c.en false;
  (* en=0 is the AND's controlling value: pulse from g1 is blocked. *)
  Sim.eval_comb c.sim;
  let config = base_config c.net in
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = 900.; width = 150. } ] in
  Alcotest.(check (array int)) "masked" [||] r.Tr.latched

let test_transient_window_masking () =
  let c = make_chain () in
  Sim.set_input c.sim c.inp false;
  Sim.set_input c.sim c.en true;
  Sim.eval_comb c.sim;
  let config = base_config c.net in
  (* Too early: pulse [160+60, 310+60) = [220, 370) misses [970, 1020]. *)
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = 160.; width = 150. } ] in
  Alcotest.(check (array int)) "too early" [||] r.Tr.latched;
  (* Too late: starts after the hold edge. *)
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = 1100.; width = 150. } ] in
  Alcotest.(check (array int)) "too late" [||] r.Tr.latched

let test_transient_electrical_masking () =
  let c = make_chain () in
  Sim.set_input c.sim c.inp false;
  Sim.set_input c.sim c.en true;
  Sim.eval_comb c.sim;
  let config = base_config c.net in
  (* Width 45 < threshold: loses 20 per gate; after g2 it is 25 < min_width
     -> dies even though timing would latch. *)
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = 950.; width = 45. } ] in
  Alcotest.(check (array int)) "attenuated away" [||] r.Tr.latched;
  (* Width 200 >= threshold: survives unchanged. *)
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = 900.; width = 200. } ] in
  Alcotest.(check (array int)) "wide pulse survives" [| c.r_dff |] r.Tr.latched

let test_transient_strike_on_g2_direct () =
  let c = make_chain () in
  Sim.set_input c.sim c.inp false;
  Sim.set_input c.sim c.en false;
  (* Even with en=0, a strike on g2's own output is not masked. *)
  Sim.eval_comb c.sim;
  let config = base_config c.net in
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.g2; time = 980.; width = 100. } ] in
  Alcotest.(check (array int)) "g2 strike latches" [| c.r_dff |] r.Tr.latched

let test_transient_direct_dff_strike () =
  let c = make_chain () in
  Sim.eval_comb c.sim;
  let config = base_config c.net in
  let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.r_dff; time = 0.; width = 100. } ] in
  Alcotest.(check (array int)) "direct" [| c.r_dff |] r.Tr.direct;
  Alcotest.(check (array int)) "no latched" [||] r.Tr.latched

let test_transient_validation () =
  let c = make_chain () in
  Sim.eval_comb c.sim;
  let config = base_config c.net in
  Alcotest.check_raises "zero width" (Invalid_argument "Transient.inject: non-positive strike width")
    (fun () -> ignore (Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = 0.; width = 0. } ]));
  Alcotest.check_raises "negative time" (Invalid_argument "Transient.inject: negative strike time")
    (fun () -> ignore (Tr.inject c.sim config ~strikes:[ { Tr.node = c.g1; time = -1.; width = 10. } ]))

let test_transient_mux_sensitization () =
  (* mux(sel, d0, d1) with equal data values: a pulse on sel is masked. *)
  let b = B.create () in
  let sel = B.add_input b ~name:"sel" in
  let d0 = B.add_input b ~name:"d0" in
  let d1 = B.add_input b ~name:"d1" in
  let selbuf = B.add_gate b K.Buf [| sel |] in
  let m = B.add_gate b K.Mux [| selbuf; d0; d1 |] in
  let r = B.add_dff b ~group:"r" ~bit:0 ~init:false in
  B.connect_dff b r ~d:m;
  B.set_output b ~name:"o" m;
  let net = N.of_builder b in
  let sim = Sim.create net in
  let config = base_config net in
  let strike = [ { Tr.node = selbuf; time = 870.; width = 150. } ] in
  Sim.set_input sim d0 true;
  Sim.set_input sim d1 true;
  Sim.eval_comb sim;
  let res = Tr.inject sim config ~strikes:strike in
  Alcotest.(check (array int)) "equal data masks select pulse" [||] res.Tr.latched;
  Sim.set_input sim d1 false;
  Sim.eval_comb sim;
  let res = Tr.inject sim config ~strikes:strike in
  Alcotest.(check (array int)) "differing data propagates" [| r |] res.Tr.latched

(* ------------------------------------------------------------------ *)
(* Vcd *)

module Vcd = Fmc_gatesim.Vcd

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_vcd_counter () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"c" ~width:4 ~init:0 in
  Hdl.connect r (Vec.add (Hdl.q r) (Vec.of_int ctx ~width:4 1));
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  let nodes = N.register_group net "c" in
  let vcd =
    Vcd.record sim ~cycles:4 ~drive:(fun _ _ -> ())
      ~signals:[ { Vcd.name = "count"; nodes } ]
  in
  Alcotest.(check bool) "header" true (contains vcd "$enddefinitions");
  Alcotest.(check bool) "bus declared" true (contains vcd "$var wire 4 ! count [3:0] $end");
  Alcotest.(check bool) "initial value" true (contains vcd "b0000 !");
  Alcotest.(check bool) "counts up" true (contains vcd "b0011 !");
  Alcotest.(check bool) "timesteps" true (contains vcd "#3")

let test_vcd_change_compression () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"hold" ~width:1 ~init:1 in
  Hdl.connect r (Hdl.q r);
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  let vcd =
    Vcd.record sim ~cycles:5 ~drive:(fun _ _ -> ())
      ~signals:[ { Vcd.name = "hold"; nodes = N.register_group net "hold" } ]
  in
  (* The constant signal is dumped once, not five times. *)
  let count needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length vcd then acc
      else go (i + 1) (if String.sub vcd i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "single dump" 1 (count "1!")

let test_vcd_validation () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"x" ~width:1 ~init:0 in
  Hdl.connect r (Hdl.q r);
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  let s = { Vcd.name = "x"; nodes = N.register_group net "x" } in
  Alcotest.check_raises "no signals" (Invalid_argument "Vcd.record: no signals") (fun () ->
      ignore (Vcd.record sim ~cycles:1 ~drive:(fun _ _ -> ()) ~signals:[]));
  Alcotest.check_raises "duplicate names" (Invalid_argument "Vcd.record: duplicate signal name")
    (fun () -> ignore (Vcd.record sim ~cycles:1 ~drive:(fun _ _ -> ()) ~signals:[ s; s ]));
  Alcotest.check_raises "bad cycles" (Invalid_argument "Vcd.record: cycles must be positive")
    (fun () -> ignore (Vcd.record sim ~cycles:0 ~drive:(fun _ _ -> ()) ~signals:[ s ]))

(* ------------------------------------------------------------------ *)
(* Glitch *)

module Glitch = Fmc_gatesim.Glitch

(* Two registers: r_fast.d = NOT in (1 level), r_slow.d = 4-level chain. *)
let glitch_net () =
  let b = B.create () in
  let inp = B.add_input b ~name:"i" in
  let g1 = B.add_gate b K.Not [| inp |] in
  let g2 = B.add_gate b K.Not [| g1 |] in
  let g3 = B.add_gate b K.Not [| g2 |] in
  let g4 = B.add_gate b K.Not [| g3 |] in
  let rf = B.add_dff b ~group:"fast" ~bit:0 ~init:false in
  let rs = B.add_dff b ~group:"slow" ~bit:0 ~init:false in
  B.connect_dff b rf ~d:g1;
  B.connect_dff b rs ~d:g4;
  B.set_output b ~name:"o" g4;
  (N.of_builder b, inp, rf, rs)

let test_glitch_static_timing () =
  let net, _, _, rs = glitch_net () in
  let config = base_config net in
  let timing = Glitch.static_timing net config in
  Alcotest.(check (float 1e-9)) "critical = 4 inverters" (4. *. 40.) (Glitch.critical_path timing);
  Alcotest.(check (float 1e-9)) "slow D arrival" 160. (Glitch.arrival timing (N.dff_d net rs))

let test_glitch_violation_threshold () =
  let net, inp, rf, rs = glitch_net () in
  let config = base_config net in
  let timing = Glitch.static_timing net config in
  let sim = Sim.create net in
  (* i=0: g1=1 (fast D=1 vs Q=0: changing), g4=0 (slow D=0 vs Q=0: same).
     Use i=1 instead: g1=0 (same as fast Q), g4=1 (slow changes). *)
  Sim.set_input sim inp true;
  Sim.eval_comb sim;
  (* Nominal period: nothing violated. *)
  let v = Glitch.violated timing config sim ~period:config.Tr.clock_period in
  Alcotest.(check (array int)) "no violation at nominal period" [||] v;
  (* Period covering 2 inverters + setup: the 4-level path misses. *)
  let v = Glitch.violated timing config sim ~period:(80. +. 30. +. 1.) in
  Alcotest.(check (array int)) "slow register violated" [| rs |] v;
  ignore rf

let test_glitch_unchanged_value_harmless () =
  let net, inp, _, _ = glitch_net () in
  let config = base_config net in
  let timing = Glitch.static_timing net config in
  let sim = Sim.create net in
  Sim.set_input sim inp false;
  Sim.eval_comb sim;
  (* g4 = 0 equals slow's current Q: a timing violation cannot be observed. *)
  let v = Glitch.violated timing config sim ~period:10. in
  (* fast: g1 = 1 differs from Q=0 and arrival 40 > 10-30 -> violated. *)
  Alcotest.(check int) "only the changing register" 1 (Array.length v)

let test_glitch_latch_keeps_stale () =
  let net, inp, _rf, rs = glitch_net () in
  let config = base_config net in
  let timing = Glitch.static_timing net config in
  let sim = Sim.create net in
  Sim.set_input sim inp true;
  Sim.eval_comb sim;
  (* Glitch at 111ps: slow (arrival 160) violated, fast (arrival 40) fine. *)
  let stale = Glitch.latch_with_glitch timing config sim ~period:111. in
  Alcotest.(check (array int)) "stale set" [| rs |] stale;
  Alcotest.(check int) "slow kept 0" 0 (Sim.read_group sim "slow");
  Alcotest.(check int) "fast latched g1=0" 0 (Sim.read_group sim "fast");
  (* A clean latch would have stored g4 = 1 into slow. *)
  Sim.eval_comb sim;
  let clean = Glitch.latch_with_glitch timing config sim ~period:config.Tr.clock_period in
  Alcotest.(check (array int)) "nominal period latches clean" [||] clean;
  Alcotest.(check int) "slow now 1" 1 (Sim.read_group sim "slow")

let test_glitch_validation () =
  let net, _, _, _ = glitch_net () in
  let config = base_config net in
  let timing = Glitch.static_timing net config in
  let sim = Sim.create net in
  Sim.eval_comb sim;
  Alcotest.check_raises "bad period" (Invalid_argument "Glitch.violated: non-positive period")
    (fun () -> ignore (Glitch.violated timing config sim ~period:0.))

(* ------------------------------------------------------------------ *)
(* Pattern *)

let pattern_net () =
  (* Two groups: "a" (16 bits), "b" (8 bits). *)
  let ctx = Hdl.create () in
  let a = Hdl.reg ctx ~group:"a" ~width:16 ~init:0 in
  let b = Hdl.reg ctx ~group:"b" ~width:8 ~init:0 in
  Hdl.connect a (Hdl.q a);
  Hdl.connect b (Hdl.q b);
  Hdl.elaborate ctx

let test_pattern_classify () =
  let net = pattern_net () in
  let a = N.register_group net "a" and b = N.register_group net "b" in
  Alcotest.(check (option string)) "empty" None
    (Option.map Pattern.to_string (Pattern.classify net ~flips:[||]));
  Alcotest.(check (option string)) "single bit" (Some "single-bit")
    (Option.map Pattern.to_string (Pattern.classify net ~flips:[| a.(3) |]));
  Alcotest.(check (option string)) "single byte" (Some "single-byte")
    (Option.map Pattern.to_string (Pattern.classify net ~flips:[| a.(0); a.(7) |]));
  Alcotest.(check (option string)) "crosses byte boundary" (Some "multi-byte")
    (Option.map Pattern.to_string (Pattern.classify net ~flips:[| a.(7); a.(8) |]));
  Alcotest.(check (option string)) "crosses groups" (Some "multi-byte")
    (Option.map Pattern.to_string (Pattern.classify net ~flips:[| a.(0); b.(0) |]))

let test_pattern_fills_byte () =
  let net = pattern_net () in
  let a = N.register_group net "a" in
  let full = Array.init 8 (fun i -> a.(i)) in
  Alcotest.(check bool) "full byte" true (Pattern.fills_whole_byte net ~flips:full);
  Alcotest.(check bool) "partial byte" false
    (Pattern.fills_whole_byte net ~flips:(Array.sub full 0 5))

let test_pattern_key () =
  let net = pattern_net () in
  let a = N.register_group net "a" in
  Alcotest.(check string) "canonical order" "a[10],a[2]" (Pattern.key net ~flips:[| a.(10); a.(2) |]);
  Alcotest.(check string) "order independent" (Pattern.key net ~flips:[| a.(2); a.(10) |])
    (Pattern.key net ~flips:[| a.(10); a.(2) |])

(* Property: latched set of a strike is monotone in pulse width (wider
   pulses can only latch at least the same registers in this simple chain). *)
let transient_props =
  [
    QCheck.Test.make ~name:"wider pulses never latch fewer registers (chain)" ~count:100
      QCheck.(pair (float_range 0. 1100.) (float_range 30. 200.))
      (fun (time, width) ->
        let c = make_chain () in
        Sim.set_input c.sim c.inp false;
        Sim.set_input c.sim c.en true;
        Sim.eval_comb c.sim;
        let config = base_config c.net in
        let strike w = [ { Tr.node = c.g1; time; width = w } ] in
        let narrow = (Tr.inject c.sim config ~strikes:(strike width)).Tr.latched in
        let wide = (Tr.inject c.sim config ~strikes:(strike (width +. 100.))).Tr.latched in
        Array.for_all (fun d -> Array.mem d wide) narrow);
    QCheck.Test.make ~name:"strikes on unplaced kinds are ignored" ~count:50
      QCheck.(float_range 0. 500.)
      (fun time ->
        let c = make_chain () in
        Sim.eval_comb c.sim;
        let config = base_config c.net in
        let r = Tr.inject c.sim config ~strikes:[ { Tr.node = c.inp; time; width = 100. } ] in
        r.Tr.seeded = 0 && Array.length r.Tr.latched = 0);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "gatesim"
    [
      ( "cycle_sim",
        [
          Alcotest.test_case "combinational evaluation" `Quick test_cycle_sim_comb;
          Alcotest.test_case "input validation" `Quick test_cycle_sim_input_validation;
          Alcotest.test_case "snapshot/restore" `Quick test_cycle_sim_snapshot_restore;
          Alcotest.test_case "register flip" `Quick test_cycle_sim_flip;
        ] );
      ("signature", [ Alcotest.test_case "counter signatures" `Quick test_signature_counter ]);
      ( "transient",
        [
          Alcotest.test_case "latches in window" `Quick test_transient_latches_in_window;
          Alcotest.test_case "logical masking" `Quick test_transient_logical_masking;
          Alcotest.test_case "latching-window masking" `Quick test_transient_window_masking;
          Alcotest.test_case "electrical masking" `Quick test_transient_electrical_masking;
          Alcotest.test_case "strike past masking gate" `Quick test_transient_strike_on_g2_direct;
          Alcotest.test_case "direct flip-flop strike" `Quick test_transient_direct_dff_strike;
          Alcotest.test_case "argument validation" `Quick test_transient_validation;
          Alcotest.test_case "mux sensitization" `Quick test_transient_mux_sensitization;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "counter waveform" `Quick test_vcd_counter;
          Alcotest.test_case "change compression" `Quick test_vcd_change_compression;
          Alcotest.test_case "validation" `Quick test_vcd_validation;
        ] );
      ( "glitch",
        [
          Alcotest.test_case "static timing" `Quick test_glitch_static_timing;
          Alcotest.test_case "violation threshold" `Quick test_glitch_violation_threshold;
          Alcotest.test_case "unchanged value harmless" `Quick test_glitch_unchanged_value_harmless;
          Alcotest.test_case "latch keeps stale state" `Quick test_glitch_latch_keeps_stale;
          Alcotest.test_case "argument validation" `Quick test_glitch_validation;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "classification" `Quick test_pattern_classify;
          Alcotest.test_case "fills whole byte" `Quick test_pattern_fills_byte;
          Alcotest.test_case "canonical key" `Quick test_pattern_key;
        ] );
      ("props", q transient_props);
    ]
