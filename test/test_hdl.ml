(* Tests for the structural eDSL: every combinator is checked against its
   integer semantics by elaborating a small circuit and simulating it. *)

module Hdl = Fmc_hdl.Hdl
module Vec = Fmc_hdl.Vec
module Sim = Fmc_gatesim.Cycle_sim

(* Build a combinational circuit [f] over two w-bit inputs, returning an
   evaluator (a, b) -> output integer. *)
let comb2 ~w ~out_w f =
  let ctx = Hdl.create () in
  let a = Hdl.input ctx "a" w in
  let b = Hdl.input ctx "b" w in
  Hdl.output ctx "o" (f ctx a b);
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  let ain = Hdl.input_bus net "a" w and bin = Hdl.input_bus net "b" w in
  let onodes = Hdl.output_bus net "o" out_w in
  fun x y ->
    Sim.set_input_bus sim ain x;
    Sim.set_input_bus sim bin y;
    Sim.eval_comb sim;
    Sim.read_bus sim onodes

let comb1 ~w ~out_w f =
  let g = comb2 ~w ~out_w (fun ctx a _ -> f ctx a) in
  fun x -> g x 0

let mask w v = v land ((1 lsl w) - 1)

let test_const_and_logic () =
  let f = comb2 ~w:4 ~out_w:4 (fun _ a b -> Vec.and_v a b) in
  Alcotest.(check int) "and" 0b1000 (f 0b1100 0b1010);
  let f = comb2 ~w:4 ~out_w:4 (fun _ a b -> Vec.or_v a b) in
  Alcotest.(check int) "or" 0b1110 (f 0b1100 0b1010);
  let f = comb2 ~w:4 ~out_w:4 (fun _ a b -> Vec.xor_v a b) in
  Alcotest.(check int) "xor" 0b0110 (f 0b1100 0b1010);
  let f = comb1 ~w:4 ~out_w:4 (fun _ a -> Vec.not_v a) in
  Alcotest.(check int) "not" 0b0011 (f 0b1100);
  let f = comb1 ~w:4 ~out_w:4 (fun ctx _ -> Vec.of_int ctx ~width:4 9) in
  Alcotest.(check int) "const" 9 (f 0)

let test_mux_and_reduce () =
  let f = comb2 ~w:4 ~out_w:1 (fun _ a _ -> [| Hdl.and_reduce a |]) in
  Alcotest.(check int) "and_reduce all ones" 1 (f 0b1111 0);
  Alcotest.(check int) "and_reduce not all" 0 (f 0b1101 0);
  let f = comb2 ~w:4 ~out_w:1 (fun _ a _ -> [| Hdl.or_reduce a |]) in
  Alcotest.(check int) "or_reduce" 1 (f 0b0100 0);
  Alcotest.(check int) "or_reduce zero" 0 (f 0 0);
  let f = comb2 ~w:4 ~out_w:1 (fun _ a _ -> [| Hdl.xor_reduce a |]) in
  Alcotest.(check int) "xor_reduce odd parity" 1 (f 0b0111 0);
  Alcotest.(check int) "xor_reduce even parity" 0 (f 0b0101 0);
  let f = comb2 ~w:4 ~out_w:4 (fun _ a b -> Vec.mux2v (Vec.bit a 0) (Vec.srl_const a 1) b) in
  (* sel = a.(0): 0 -> a >> 1, 1 -> b *)
  Alcotest.(check int) "mux sel=0" 0b0110 (f 0b1100 0b0001);
  Alcotest.(check int) "mux sel=1" 0b0001 (f 0b1101 0b0001)

let test_arith_known () =
  let add = comb2 ~w:8 ~out_w:8 (fun _ a b -> Vec.add a b) in
  Alcotest.(check int) "add" 77 (add 33 44);
  Alcotest.(check int) "add wraps" 4 (add 250 10);
  let sub = comb2 ~w:8 ~out_w:8 (fun _ a b -> Vec.sub a b) in
  Alcotest.(check int) "sub" 11 (sub 44 33);
  Alcotest.(check int) "sub wraps" 246 (sub 33 43)

let test_compare_known () =
  let lt = comb2 ~w:8 ~out_w:1 (fun _ a b -> [| Vec.ult a b |]) in
  Alcotest.(check int) "ult true" 1 (lt 3 5);
  Alcotest.(check int) "ult false" 0 (lt 5 3);
  Alcotest.(check int) "ult equal" 0 (lt 7 7);
  let eq = comb2 ~w:8 ~out_w:1 (fun _ a b -> [| Vec.eq a b |]) in
  Alcotest.(check int) "eq" 1 (eq 42 42);
  Alcotest.(check int) "neq" 0 (eq 42 41)

let test_shifts_known () =
  let sll = comb2 ~w:8 ~out_w:8 (fun _ a b -> Vec.sll a ~amount:(Vec.bits b ~lo:0 ~hi:3)) in
  Alcotest.(check int) "sll 0" 0b1011 (sll 0b1011 0);
  Alcotest.(check int) "sll 3" 0b1011000 (sll 0b1011 3);
  Alcotest.(check int) "sll 7" 0b10000000 (sll 0b1011 7);
  let srl = comb2 ~w:8 ~out_w:8 (fun _ a b -> Vec.srl a ~amount:(Vec.bits b ~lo:0 ~hi:3)) in
  Alcotest.(check int) "srl 2" 0b10 (srl 0b1011 2);
  Alcotest.(check int) "srl 7" 1 (srl 0b10000000 7)

let test_slice_concat () =
  let f = comb1 ~w:8 ~out_w:4 (fun _ a -> Vec.bits a ~lo:2 ~hi:6) in
  Alcotest.(check int) "bits [2,6)" 0b1011 (f 0b10101100);
  let f = comb1 ~w:4 ~out_w:8 (fun _ a -> Vec.concat [ a; Vec.not_v a ]) in
  Alcotest.(check int) "concat" 0b01011010 (f 0b1010);
  let f = comb1 ~w:4 ~out_w:8 (fun _ a -> Vec.zext a 8) in
  Alcotest.(check int) "zext" 0b1010 (f 0b1010);
  let f = comb1 ~w:4 ~out_w:8 (fun _ a -> Vec.sext a 8) in
  Alcotest.(check int) "sext negative" 0b11111010 (f 0b1010);
  Alcotest.(check int) "sext positive" 0b0101 (f 0b0101)

let test_mux_tree_decode () =
  let f =
    comb2 ~w:8 ~out_w:8 (fun ctx _ b ->
        let cases = Array.init 4 (fun i -> Vec.of_int ctx ~width:8 (10 * (i + 1))) in
        Vec.mux_tree ~sel:(Vec.bits b ~lo:0 ~hi:2) cases)
  in
  for i = 0 to 3 do
    Alcotest.(check int) (Printf.sprintf "case %d" i) (10 * (i + 1)) (f 0 i)
  done;
  let f = comb1 ~w:3 ~out_w:8 (fun _ a -> Vec.decode a) in
  for v = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "decode %d" v) (1 lsl v) (f v)
  done

let test_width_checks () =
  let ctx = Hdl.create () in
  let a = Hdl.input ctx "a" 4 in
  let b = Hdl.input ctx "b" 5 in
  Alcotest.check_raises "add width" (Invalid_argument "Vec.add: width mismatch (4 vs 5)") (fun () ->
      ignore (Vec.add a b));
  Alcotest.check_raises "mux_tree cases" (Invalid_argument "Vec.mux_tree: 3 cases for 2 select bits")
    (fun () -> ignore (Vec.mux_tree ~sel:(Vec.bits a ~lo:0 ~hi:2) (Array.make 3 a)))

let test_context_mixing_rejected () =
  let c1 = Hdl.create () and c2 = Hdl.create () in
  let a = Hdl.input1 c1 "a" and b = Hdl.input1 c2 "b" in
  Alcotest.check_raises "cross-context" (Invalid_argument "Hdl: signals from different contexts")
    (fun () -> ignore Hdl.(a &: b))

let test_register_loop () =
  (* A 4-bit counter: r <- r + 1 each cycle. *)
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"cnt" ~width:4 ~init:0 in
  Hdl.connect r (Vec.add (Hdl.q r) (Vec.of_int ctx ~width:4 1));
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  for expect = 0 to 20 do
    Alcotest.(check int) (Printf.sprintf "count %d" expect) (expect mod 16) (Sim.read_group sim "cnt");
    Sim.step sim
  done

let test_register_init_and_reset () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~group:"r" ~width:8 ~init:0xA5 in
  Hdl.connect r (Vec.not_v (Hdl.q r));
  let net = Hdl.elaborate ctx in
  let sim = Sim.create net in
  Alcotest.(check int) "init" 0xA5 (Sim.read_group sim "r");
  Sim.step sim;
  Alcotest.(check int) "toggled" 0x5A (Sim.read_group sim "r");
  Sim.reset sim;
  Alcotest.(check int) "reset" 0xA5 (Sim.read_group sim "r")

(* Properties: arithmetic against OCaml ints, across random widths. *)
let arith_props =
  let run name f =
    QCheck.Test.make ~name ~count:300
      QCheck.(triple (int_range 1 12) (int_bound ((1 lsl 12) - 1)) (int_bound ((1 lsl 12) - 1)))
      f
  in
  [
    run "add matches integer addition" (fun (w, x, y) ->
        let x = mask w x and y = mask w y in
        let f = comb2 ~w ~out_w:w (fun _ a b -> Vec.add a b) in
        f x y = mask w (x + y));
    run "sub matches integer subtraction" (fun (w, x, y) ->
        let x = mask w x and y = mask w y in
        let f = comb2 ~w ~out_w:w (fun _ a b -> Vec.sub a b) in
        f x y = mask w (x - y));
    run "ult matches integer comparison" (fun (w, x, y) ->
        let x = mask w x and y = mask w y in
        let f = comb2 ~w ~out_w:1 (fun _ a b -> [| Vec.ult a b |]) in
        f x y = if x < y then 1 else 0);
    run "ule/uge/ugt consistent" (fun (w, x, y) ->
        let x = mask w x and y = mask w y in
        let f =
          comb2 ~w ~out_w:3 (fun _ a b -> [| Vec.ule a b; Vec.uge a b; Vec.ugt a b |])
        in
        let v = f x y in
        v land 1 = (if x <= y then 1 else 0)
        && (v lsr 1) land 1 = (if x >= y then 1 else 0)
        && (v lsr 2) land 1 = if x > y then 1 else 0);
    run "barrel sll matches lsl" (fun (w, x, y) ->
        let x = mask w x in
        let sh_bits = 3 in
        let sh = y land ((1 lsl sh_bits) - 1) in
        let f =
          comb2 ~w:(max w sh_bits) ~out_w:w (fun ctx a b ->
              ignore ctx;
              Vec.sll (Vec.bits a ~lo:0 ~hi:w) ~amount:(Vec.bits b ~lo:0 ~hi:sh_bits))
        in
        f x sh = mask w (x lsl sh));
    run "barrel srl matches lsr" (fun (w, x, y) ->
        let x = mask w x in
        let sh = y land 7 in
        let f =
          comb2 ~w:(max w 3) ~out_w:w (fun _ a b ->
              Vec.srl (Vec.bits a ~lo:0 ~hi:w) ~amount:(Vec.bits b ~lo:0 ~hi:3))
        in
        f x sh = x lsr sh);
    run "is_zero" (fun (w, x, _) ->
        let x = mask w x in
        let f = comb2 ~w ~out_w:1 (fun _ a _ -> [| Vec.is_zero a |]) in
        f x 0 = if x = 0 then 1 else 0);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "hdl"
    [
      ( "combinators",
        [
          Alcotest.test_case "constants and logic" `Quick test_const_and_logic;
          Alcotest.test_case "mux and reductions" `Quick test_mux_and_reduce;
          Alcotest.test_case "arithmetic" `Quick test_arith_known;
          Alcotest.test_case "comparisons" `Quick test_compare_known;
          Alcotest.test_case "shifts" `Quick test_shifts_known;
          Alcotest.test_case "slices and concat" `Quick test_slice_concat;
          Alcotest.test_case "mux_tree and decode" `Quick test_mux_tree_decode;
        ] );
      ( "validation",
        [
          Alcotest.test_case "width checks" `Quick test_width_checks;
          Alcotest.test_case "context mixing rejected" `Quick test_context_mixing_rejected;
        ] );
      ( "registers",
        [
          Alcotest.test_case "counter feedback loop" `Quick test_register_loop;
          Alcotest.test_case "init and reset" `Quick test_register_init_and_reset;
        ] );
      ("props", q arith_props);
    ]
