(* Tests for the ISA: encode/decode roundtrip, field validation, the
   assembler's label resolution, and benchmark program structure. *)

module Isa = Fmc_isa.Isa
module Asm = Fmc_isa.Asm
module Programs = Fmc_isa.Programs

let all_sample_instrs =
  [
    Isa.Halt;
    Isa.Trapret;
    Isa.Nop;
    Isa.Retu;
    Isa.Ldi (3, 0xFF);
    Isa.Ldi (0, 0);
    Isa.Lui (7, 0x12);
    Isa.Add (1, 2, 3);
    Isa.Sub (7, 6, 5);
    Isa.And_ (0, 0, 0);
    Isa.Or_ (4, 4, 4);
    Isa.Xor_ (2, 5, 1);
    Isa.Shl (3, 3, 4);
    Isa.Shr (6, 1, 2);
    Isa.Ld (5, 2, 63);
    Isa.St (1, 7, 0);
    Isa.Brz (4, -256);
    Isa.Brz (4, 255);
    Isa.Brnz (0, -1);
    Isa.Jalr (6, 3);
    Isa.Mpuw (0, 1);
    Isa.Mpuw (5, 7);
  ]

let test_roundtrip_samples () =
  List.iter
    (fun instr ->
      let w = Isa.encode instr in
      Alcotest.(check bool) "16-bit" true (w >= 0 && w <= 0xffff);
      Alcotest.(check string) (Isa.to_string instr) (Isa.to_string instr)
        (Isa.to_string (Isa.decode w)))
    all_sample_instrs

let test_encode_validation () =
  let inv f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad reg" true (inv (fun () -> Isa.encode (Isa.Add (8, 0, 0))));
  Alcotest.(check bool) "negative reg" true (inv (fun () -> Isa.encode (Isa.Add (-1, 0, 0))));
  Alcotest.(check bool) "imm8 too big" true (inv (fun () -> Isa.encode (Isa.Ldi (0, 256))));
  Alcotest.(check bool) "imm6 too big" true (inv (fun () -> Isa.encode (Isa.Ld (0, 0, 64))));
  Alcotest.(check bool) "branch too far" true (inv (fun () -> Isa.encode (Isa.Brz (0, 256))));
  Alcotest.(check bool) "branch too far back" true (inv (fun () -> Isa.encode (Isa.Brz (0, -257))));
  Alcotest.(check bool) "mpu field" true (inv (fun () -> Isa.encode (Isa.Mpuw (6, 0))));
  Alcotest.(check bool) "decode range" true (inv (fun () -> Isa.decode 0x10000))

let test_word_zero_is_halt () =
  (* Fetching uninitialized memory must self-terminate. *)
  Alcotest.(check string) "zero decodes to halt" "halt" (Isa.to_string (Isa.decode 0))

let test_unknown_sys_is_nop () =
  Alcotest.(check string) "sys 9" "nop" (Isa.to_string (Isa.decode 0x0009))

let test_asm_labels () =
  let prog =
    [
      Asm.I (Isa.Ldi (1, 3));
      Asm.Label "loop";
      Asm.I (Isa.Sub (1, 1, 2));
      Asm.Brnz_to (1, "loop");
      Asm.I Isa.Halt;
    ]
  in
  let words = Asm.assemble prog in
  Alcotest.(check int) "length" 4 (Array.length words);
  (match Isa.decode words.(2) with
  | Isa.Brnz (1, -2) -> ()
  | i -> Alcotest.failf "expected brnz r1,-2 got %s" (Isa.to_string i));
  (* Forward reference. *)
  let fwd = [ Asm.Brz_to (0, "end"); Asm.I Isa.Nop; Asm.Label "end"; Asm.I Isa.Halt ] in
  let words = Asm.assemble fwd in
  match Isa.decode words.(0) with
  | Isa.Brz (0, 1) -> ()
  | i -> Alcotest.failf "expected brz r0,1 got %s" (Isa.to_string i)

let test_asm_li16 () =
  let words = Asm.assemble [ Asm.Li16 (4, 0xBEEF) ] in
  Alcotest.(check int) "two words" 2 (Array.length words);
  (match Isa.decode words.(0) with
  | Isa.Ldi (4, 0xEF) -> ()
  | i -> Alcotest.failf "expected ldi got %s" (Isa.to_string i));
  match Isa.decode words.(1) with
  | Isa.Lui (4, 0xBE) -> ()
  | i -> Alcotest.failf "expected lui got %s" (Isa.to_string i)

let test_asm_errors () =
  let inv msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  inv "Asm.assemble: duplicate label x" (fun () ->
      ignore (Asm.assemble [ Asm.Label "x"; Asm.Label "x" ]));
  inv "Asm.assemble: undefined label nowhere" (fun () ->
      ignore (Asm.assemble [ Asm.Brz_to (0, "nowhere") ]));
  inv "Asm.assemble: li16 value 65536 out of range" (fun () ->
      ignore (Asm.assemble [ Asm.Li16 (0, 0x10000) ]))

let test_benchmarks_assemble () =
  List.iter
    (fun (p : Programs.t) ->
      Alcotest.(check bool) (p.Programs.name ^ " nonempty") true (Array.length p.Programs.imem > 8);
      Alcotest.(check bool) (p.Programs.name ^ " fits") true (Array.length p.Programs.imem < 256);
      (* All words decode. *)
      Array.iter (fun w -> ignore (Isa.decode w)) p.Programs.imem;
      (* Address 2 (the trap vector) holds the expected handler. *)
      let handler = Isa.decode p.Programs.imem.(Isa.trap_vector) in
      let expect = if p.Programs.name = "synthetic" then "trapret" else "halt" in
      Alcotest.(check string) (p.Programs.name ^ " handler") expect (Isa.to_string handler))
    [ Programs.illegal_write; Programs.illegal_read; Programs.illegal_exec; Programs.synthetic ]

let test_illegal_exec_layout () =
  let p = Programs.illegal_exec in
  (match p.Programs.user_code_range with
  | Some (lo, hi) ->
      Alcotest.(check bool) "service outside user region" true
        (Programs.service_addr < lo || Programs.service_addr > hi);
      Alcotest.(check bool) "service inside image" true
        (Programs.service_addr < Array.length p.Programs.imem)
  | None -> Alcotest.fail "missing user range");
  match p.Programs.attack with
  | Some (addr, Programs.Attack_exec) -> Alcotest.(check int) "attack target" Programs.service_addr addr
  | _ -> Alcotest.fail "expected an exec attack"

let test_benchmark_metadata () =
  Alcotest.(check (list int)) "write observable" [ Programs.secret_addr ]
    Programs.illegal_write.Programs.observable;
  Alcotest.(check (list int)) "read observable" [ Programs.out_addr ]
    Programs.illegal_read.Programs.observable;
  Alcotest.(check bool) "secret outside user window" true
    (Programs.secret_addr > Programs.user_data_limit);
  Alcotest.(check bool) "out inside user window" true
    (Programs.out_addr >= Programs.user_data_base && Programs.out_addr <= Programs.user_data_limit)

(* Property: encode/decode is the identity on all valid instructions. *)
let roundtrip_props =
  let gen_instr =
    QCheck.Gen.(
      let reg = int_range 0 7 in
      oneof
        [
          return Isa.Halt;
          return Isa.Trapret;
          return Isa.Nop;
          return Isa.Retu;
          map2 (fun r i -> Isa.Ldi (r, i)) reg (int_range 0 255);
          map2 (fun r i -> Isa.Lui (r, i)) reg (int_range 0 255);
          map3 (fun a b c -> Isa.Add (a, b, c)) reg reg reg;
          map3 (fun a b c -> Isa.Sub (a, b, c)) reg reg reg;
          map3 (fun a b c -> Isa.And_ (a, b, c)) reg reg reg;
          map3 (fun a b c -> Isa.Or_ (a, b, c)) reg reg reg;
          map3 (fun a b c -> Isa.Xor_ (a, b, c)) reg reg reg;
          map3 (fun a b c -> Isa.Shl (a, b, c)) reg reg reg;
          map3 (fun a b c -> Isa.Shr (a, b, c)) reg reg reg;
          map3 (fun a b c -> Isa.Ld (a, b, c)) reg reg (int_range 0 63);
          map3 (fun a b c -> Isa.St (a, b, c)) reg reg (int_range 0 63);
          map2 (fun r i -> Isa.Brz (r, i)) reg (int_range (-256) 255);
          map2 (fun r i -> Isa.Brnz (r, i)) reg (int_range (-256) 255);
          map2 (fun a b -> Isa.Jalr (a, b)) reg reg;
          map2 (fun f r -> Isa.Mpuw (f, r)) (int_range 0 5) reg;
        ])
  in
  [
    QCheck.Test.make ~name:"encode/decode roundtrip" ~count:1000
      (QCheck.make ~print:Isa.to_string gen_instr)
      (fun instr -> Isa.decode (Isa.encode instr) = instr);
    QCheck.Test.make ~name:"decode is total on 16-bit words" ~count:1000
      QCheck.(int_bound 0xffff)
      (fun w ->
        let i = Isa.decode w in
        ignore (Isa.to_string i);
        true);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "isa"
    [
      ( "encoding",
        [
          Alcotest.test_case "sample roundtrip" `Quick test_roundtrip_samples;
          Alcotest.test_case "field validation" `Quick test_encode_validation;
          Alcotest.test_case "word 0 is halt" `Quick test_word_zero_is_halt;
          Alcotest.test_case "unknown sys code is nop" `Quick test_unknown_sys_is_nop;
        ] );
      ( "asm",
        [
          Alcotest.test_case "label resolution" `Quick test_asm_labels;
          Alcotest.test_case "li16 expansion" `Quick test_asm_li16;
          Alcotest.test_case "error reporting" `Quick test_asm_errors;
        ] );
      ( "programs",
        [
          Alcotest.test_case "benchmarks assemble" `Quick test_benchmarks_assemble;
          Alcotest.test_case "benchmark metadata" `Quick test_benchmark_metadata;
          Alcotest.test_case "illegal-exec layout" `Quick test_illegal_exec_layout;
        ] );
      ("props", q roundtrip_props);
    ]
