(* Tests for placement and the area model. *)

module N = Fmc_netlist.Netlist
module Hdl = Fmc_hdl.Hdl
module Vec = Fmc_hdl.Vec
module Placement = Fmc_layout.Placement
module Area = Fmc_layout.Area
module K = Fmc_netlist.Kind

let small_net () =
  let ctx = Hdl.create () in
  let a = Hdl.input ctx "a" 4 in
  let b = Hdl.input ctx "b" 4 in
  let r = Hdl.reg ctx ~group:"r" ~width:4 ~init:0 in
  Hdl.connect r (Vec.add (Vec.and_v a b) (Hdl.q r));
  Hdl.output ctx "o" (Hdl.q r);
  Hdl.elaborate ctx

let test_every_cell_placed () =
  let net = small_net () in
  let p = Placement.place net in
  Array.iter
    (fun c -> Alcotest.(check bool) "gate placed" true (Placement.is_placed p c))
    (N.gates net);
  Array.iter
    (fun c -> Alcotest.(check bool) "dff placed" true (Placement.is_placed p c))
    (N.dffs net);
  Array.iter
    (fun c -> Alcotest.(check bool) "input unplaced" false (Placement.is_placed p c))
    (N.inputs net);
  Alcotest.(check int) "cells = gates + dffs"
    (Array.length (N.gates net) + Array.length (N.dffs net))
    (Array.length (Placement.cells p))

let test_placement_deterministic () =
  let net = small_net () in
  let p1 = Placement.place ~seed:7 net in
  let p2 = Placement.place ~seed:7 net in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "same position" true (Placement.position p1 c = Placement.position p2 c))
    (Placement.cells p1)

let test_placement_seed_changes_rows () =
  let net = small_net () in
  let p1 = Placement.place ~seed:1 net in
  let p2 = Placement.place ~seed:2 net in
  let moved =
    Array.exists (fun c -> Placement.position p1 c <> Placement.position p2 c) (Placement.cells p1)
  in
  Alcotest.(check bool) "some cell moved" true moved

let test_no_overlaps () =
  let net = small_net () in
  let p = Placement.place net in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      let pos = Placement.position p c in
      Alcotest.(check bool) "unique position" false (Hashtbl.mem seen pos);
      Hashtbl.replace seen pos ())
    (Placement.cells p)

let test_within_radius () =
  let net = small_net () in
  let p = Placement.place net in
  let center = (Placement.cells p).(0) in
  let r0 = Placement.within p ~center ~radius:0. in
  Alcotest.(check (array int)) "radius 0 is the center" [| center |] r0;
  let all = Placement.within p ~center ~radius:1e9 in
  Alcotest.(check int) "huge radius covers everything" (Array.length (Placement.cells p)) (Array.length all);
  (* Monotonicity. *)
  let r2 = Placement.within p ~center ~radius:2. in
  let r4 = Placement.within p ~center ~radius:4. in
  Alcotest.(check bool) "monotone" true (Array.for_all (fun c -> Array.mem c r4) r2);
  Alcotest.check_raises "negative radius" (Invalid_argument "Placement.within: negative radius")
    (fun () -> ignore (Placement.within p ~center ~radius:(-1.)))

let test_distance_symmetry () =
  let net = small_net () in
  let p = Placement.place net in
  let cells = Placement.cells p in
  let a = cells.(0) and b = cells.(Array.length cells - 1) in
  Alcotest.(check (float 1e-9)) "symmetric" (Placement.distance p a b) (Placement.distance p b a);
  Alcotest.(check (float 1e-9)) "self distance" 0. (Placement.distance p a a)

let test_area_model () =
  Alcotest.(check bool) "xor costs more than inverter" true (Area.gate_area K.Xor > Area.gate_area K.Not);
  Alcotest.(check bool) "dff is the largest" true
    (Area.dff_area > Area.gate_area K.Xor);
  let net = small_net () in
  let total = Area.total net in
  let regs = Area.registers_total net in
  Alcotest.(check bool) "positive" true (total > 0.);
  Alcotest.(check (float 1e-9)) "register area" (4. *. Area.dff_area) regs;
  Alcotest.(check bool) "registers less than total" true (regs < total)

let test_hardening_overhead () =
  let net = small_net () in
  let dffs = N.dffs net in
  let one = Area.hardened_overhead net ~hardened:[| dffs.(0) |] ~factor:3. in
  Alcotest.(check (float 1e-9)) "one reg at 3x adds 2 dff areas" (2. *. Area.dff_area) one;
  let none = Area.hardened_overhead net ~hardened:[||] ~factor:3. in
  Alcotest.(check (float 1e-9)) "empty set" 0. none

(* Property: the CPU netlist places fully, disc queries behave. *)
let cpu_props =
  let circuit = lazy (Fmc_cpu.Circuit.build ()) in
  [
    QCheck.Test.make ~name:"cpu netlist: disc query matches distance predicate" ~count:20
      QCheck.(pair (int_range 0 5000) (float_range 0. 10.))
      (fun (pick, radius) ->
        let c = Lazy.force circuit in
        let p = Placement.place c.Fmc_cpu.Circuit.net in
        let cells = Placement.cells p in
        let center = cells.(pick mod Array.length cells) in
        let got = Placement.within p ~center ~radius in
        let expect =
          Array.to_list cells
          |> List.filter (fun x -> Placement.distance p center x <= radius)
        in
        Array.to_list got = expect);
    (* The indexed disc query must be indistinguishable from the reference
       scan — the Monte Carlo engine and the sva pruner both rely on the
       two returning identical arrays (same cells, same order). *)
    QCheck.Test.make ~name:"cpu netlist: within_indexed equals within" ~count:40
      QCheck.(pair (int_range 0 5000) (float_range 0. 12.))
      (fun (pick, radius) ->
        let c = Lazy.force circuit in
        let p = Placement.place c.Fmc_cpu.Circuit.net in
        let ix = Placement.index p in
        let cells = Placement.cells p in
        let center = cells.(pick mod Array.length cells) in
        Placement.within_indexed ix ~center ~radius = Placement.within p ~center ~radius);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "layout"
    [
      ( "placement",
        [
          Alcotest.test_case "every cell placed" `Quick test_every_cell_placed;
          Alcotest.test_case "deterministic for a seed" `Quick test_placement_deterministic;
          Alcotest.test_case "seed changes rows" `Quick test_placement_seed_changes_rows;
          Alcotest.test_case "no overlapping positions" `Quick test_no_overlaps;
          Alcotest.test_case "disc query" `Quick test_within_radius;
          Alcotest.test_case "distance symmetry" `Quick test_distance_symmetry;
        ] );
      ( "area",
        [
          Alcotest.test_case "relative areas" `Quick test_area_model;
          Alcotest.test_case "hardening overhead" `Quick test_hardening_overhead;
        ] );
      ("props", q cpu_props);
    ]
