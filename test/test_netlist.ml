(* Tests for the gate-level IR: builder validation, frozen-netlist
   invariants, cones and unrolled cones. *)

open Fmc_netlist
module K = Kind
module B = Builder
module N = Netlist

(* A tiny sequential circuit used across tests:

     a, b : inputs
     g1 = a AND b
     g2 = g1 XOR q0        (q0 = dff "r0")
     r0.d = g2
     g3 = NOT q0
     r1.d = g3             (r1 = dff "r1", feeds nothing)
     out "o" = g2
*)
let tiny () =
  let b = B.create () in
  let a = B.add_input b ~name:"a" in
  let bb = B.add_input b ~name:"b" in
  let q0 = B.add_dff b ~group:"r0" ~bit:0 ~init:false in
  let q1 = B.add_dff b ~group:"r1" ~bit:0 ~init:true in
  let g1 = B.add_gate b K.And [| a; bb |] in
  let g2 = B.add_gate b K.Xor [| g1; q0 |] in
  let g3 = B.add_gate b K.Not [| q0 |] in
  B.connect_dff b q0 ~d:g2;
  B.connect_dff b q1 ~d:g3;
  B.set_output b ~name:"o" g2;
  (N.of_builder b, a, bb, q0, q1, g1, g2, g3)

(* ------------------------------------------------------------------ *)
(* Kind *)

let test_kind_eval () =
  Alcotest.(check bool) "and" true (K.eval K.And [| true; true; true |]);
  Alcotest.(check bool) "and f" false (K.eval K.And [| true; false |]);
  Alcotest.(check bool) "or" true (K.eval K.Or [| false; true |]);
  Alcotest.(check bool) "nand" true (K.eval K.Nand [| true; false |]);
  Alcotest.(check bool) "nor" true (K.eval K.Nor [| false; false |]);
  Alcotest.(check bool) "xor odd" true (K.eval K.Xor [| true; true; true |]);
  Alcotest.(check bool) "xor even" false (K.eval K.Xor [| true; true |]);
  Alcotest.(check bool) "xnor" true (K.eval K.Xnor [| true; true |]);
  Alcotest.(check bool) "not" false (K.eval K.Not [| true |]);
  Alcotest.(check bool) "buf" true (K.eval K.Buf [| true |]);
  Alcotest.(check bool) "mux sel=0" true (K.eval K.Mux [| false; true; false |]);
  Alcotest.(check bool) "mux sel=1" false (K.eval K.Mux [| true; true; false |])

let test_kind_eval_arity () =
  Alcotest.check_raises "not arity" (Invalid_argument "Kind.eval: 2 fan-ins for arity-1 gate")
    (fun () -> ignore (K.eval K.Not [| true; false |]));
  Alcotest.check_raises "and arity" (Invalid_argument "Kind.eval: variadic gate needs >= 2 fan-ins")
    (fun () -> ignore (K.eval K.And [| true |]))

let test_kind_controlling () =
  let open Alcotest in
  check (option bool) "and" (Some false) (K.controlling_value K.And);
  check (option bool) "nand" (Some false) (K.controlling_value K.Nand);
  check (option bool) "or" (Some true) (K.controlling_value K.Or);
  check (option bool) "nor" (Some true) (K.controlling_value K.Nor);
  check (option bool) "xor" None (K.controlling_value K.Xor);
  check (option bool) "mux" None (K.controlling_value K.Mux)

(* ------------------------------------------------------------------ *)
(* Builder validation *)

let test_builder_const_hashcons () =
  let b = B.create () in
  let c0 = B.add_const b false in
  let c0' = B.add_const b false in
  let c1 = B.add_const b true in
  Alcotest.(check int) "const0 shared" c0 c0';
  Alcotest.(check bool) "const1 distinct" true (c1 <> c0)

let test_builder_arity_validation () =
  let b = B.create () in
  let a = B.add_input b ~name:"a" in
  Alcotest.check_raises "mux arity"
    (Invalid_argument "Builder.add_gate: mux expects 3 fan-ins, got 2") (fun () ->
      ignore (B.add_gate b K.Mux [| a; a |]));
  Alcotest.check_raises "dangling" (Invalid_argument "Builder.add_gate: dangling node id 99")
    (fun () -> ignore (B.add_gate b K.Not [| 99 |]))

let test_builder_dff_protocol () =
  let b = B.create () in
  let a = B.add_input b ~name:"a" in
  let q = B.add_dff b ~group:"r" ~bit:0 ~init:false in
  B.connect_dff b q ~d:a;
  Alcotest.check_raises "double connect"
    (Invalid_argument "Builder.connect_dff: flip-flop already connected") (fun () ->
      B.connect_dff b q ~d:a);
  Alcotest.check_raises "connect non-dff"
    (Invalid_argument "Builder.connect_dff: node is not a flip-flop") (fun () ->
      B.connect_dff b a ~d:a);
  Alcotest.check_raises "duplicate register"
    (Invalid_argument "Builder.add_dff: duplicate register r[0]") (fun () ->
      ignore (B.add_dff b ~group:"r" ~bit:0 ~init:false))

let test_builder_unconnected_dff_rejected () =
  let b = B.create () in
  ignore (B.add_dff b ~group:"r" ~bit:0 ~init:false);
  Alcotest.check_raises "unconnected"
    (Invalid_argument "Netlist.of_builder: unconnected flip-flop r[0]") (fun () ->
      ignore (N.of_builder b))

let test_builder_duplicate_output () =
  let b = B.create () in
  let a = B.add_input b ~name:"a" in
  B.set_output b ~name:"o" a;
  Alcotest.check_raises "dup output" (Invalid_argument "Builder.set_output: duplicate output name o")
    (fun () -> B.set_output b ~name:"o" a)

let test_combinational_cycle_detected () =
  let b = B.create () in
  let a = B.add_input b ~name:"a" in
  (* g2 feeds g1 and vice versa: build g1 with a placeholder then splice is
     impossible through the API, so make the cycle via two gates referencing
     each other through construction order trickery: not possible — the API
     is append-only. Instead check that a legitimate feedback loop through a
     flip-flop is accepted (the expected way to close cycles). *)
  let q = B.add_dff b ~group:"st" ~bit:0 ~init:false in
  let g = B.add_gate b K.Xor [| a; q |] in
  B.connect_dff b q ~d:g;
  let net = N.of_builder b in
  Alcotest.(check int) "one gate" 1 (Array.length (N.gates net))

let test_group_density_enforced () =
  let b = B.create () in
  let a = B.add_input b ~name:"a" in
  let q = B.add_dff b ~group:"r" ~bit:1 ~init:false in
  B.connect_dff b q ~d:a;
  Alcotest.check_raises "non-dense group"
    (Invalid_argument "Netlist.of_builder: group r has non-dense bit indices") (fun () ->
      ignore (N.of_builder b))

(* ------------------------------------------------------------------ *)
(* Frozen netlist invariants *)

let test_netlist_unknown_names () =
  let net, _, _, _, _, _, _, _ = tiny () in
  Alcotest.check_raises "unknown output"
    (Invalid_argument "Netlist.output: unknown output \"nope\" (available: o)") (fun () ->
      ignore (N.output net "nope"));
  Alcotest.check_raises "unknown input"
    (Invalid_argument "Netlist.input_by_name: unknown input \"c\" (available: a, b)") (fun () ->
      ignore (N.input_by_name net "c"));
  Alcotest.check_raises "unknown group"
    (Invalid_argument "Netlist.register_group: unknown register group \"r9\" (available: r0, r1)")
    (fun () -> ignore (N.register_group net "r9"))

let test_netlist_structure () =
  let net, a, bb, q0, q1, g1, g2, g3 = tiny () in
  Alcotest.(check int) "num nodes" 7 (N.num_nodes net);
  Alcotest.(check (array int)) "inputs" [| a; bb |] (N.inputs net);
  Alcotest.(check (array int)) "dffs" [| q0; q1 |] (N.dffs net);
  Alcotest.(check int) "gates count" 3 (Array.length (N.gates net));
  Alcotest.(check int) "output o" g2 (N.output net "o");
  Alcotest.(check int) "input by name" a (N.input_by_name net "a");
  Alcotest.(check bool) "dff init r0" false (N.dff_init net q0);
  Alcotest.(check bool) "dff init r1" true (N.dff_init net q1);
  Alcotest.(check int) "dff d r0" g2 (N.dff_d net q0);
  Alcotest.(check int) "dff d r1" g3 (N.dff_d net q1);
  let g, bit = N.dff_group net q0 in
  Alcotest.(check string) "group" "r0" g;
  Alcotest.(check int) "bit" 0 bit;
  Alcotest.(check (array int)) "register_group" [| q0 |] (N.register_group net "r0");
  ignore g1

let test_netlist_topo_order () =
  let net, _, _, _, _, g1, g2, _ = tiny () in
  let order = N.gates net in
  let pos = Hashtbl.create 8 in
  Array.iteri (fun i g -> Hashtbl.replace pos g i) order;
  Alcotest.(check bool) "g1 before g2" true (Hashtbl.find pos g1 < Hashtbl.find pos g2);
  (* Every gate's combinational fan-ins appear earlier. *)
  Array.iteri
    (fun i g ->
      Array.iter
        (fun f ->
          match N.kind net f with
          | K.Gate _ -> Alcotest.(check bool) "fanin earlier" true (Hashtbl.find pos f < i)
          | _ -> ())
        (N.fanins net g))
    order

let test_netlist_fanouts () =
  let net, a, _, q0, _, g1, g2, g3 = tiny () in
  Alcotest.(check (array int)) "fanout of a" [| g1 |] (N.fanouts net a);
  let q0_fanouts = Array.to_list (N.fanouts net q0) in
  Alcotest.(check bool) "q0 feeds g2 and g3" true (List.mem g2 q0_fanouts && List.mem g3 q0_fanouts)

let test_netlist_levels () =
  let net, a, _, q0, _, g1, g2, _ = tiny () in
  Alcotest.(check int) "input level" 0 (N.level net a);
  Alcotest.(check int) "dff level" 0 (N.level net q0);
  Alcotest.(check int) "g1 level" 1 (N.level net g1);
  Alcotest.(check int) "g2 level" 2 (N.level net g2);
  Alcotest.(check int) "max level" 2 (N.max_level net)

let test_netlist_counts () =
  let net, _, _, _, _, _, _, _ = tiny () in
  let counts = N.count_by_kind net in
  Alcotest.(check (option int)) "dffs" (Some 2) (List.assoc_opt "dff" counts);
  Alcotest.(check (option int)) "inputs" (Some 2) (List.assoc_opt "input" counts)

(* ------------------------------------------------------------------ *)
(* Cones *)

let test_fanin_cone () =
  let net, a, bb, q0, _, g1, g2, _ = tiny () in
  let cone = Cone.fanin net ~roots:[ g2 ] in
  Alcotest.(check (array int)) "gates" [| g1; g2 |] cone.Cone.gates;
  Alcotest.(check (array int)) "frontier registers" [| q0 |] cone.Cone.registers;
  Alcotest.(check (array int)) "frontier inputs" [| a; bb |] cone.Cone.inputs;
  Alcotest.(check bool) "mem_gate" true (Cone.mem_gate cone g1);
  Alcotest.(check bool) "mem_register" true (Cone.mem_register cone q0);
  Alcotest.(check bool) "not mem" false (Cone.mem_gate cone a);
  Alcotest.(check int) "size" 5 (Cone.size cone)

let test_fanin_cone_of_register_root () =
  let net, _, _, q0, _, _, _, _ = tiny () in
  let cone = Cone.fanin net ~roots:[ q0 ] in
  Alcotest.(check (array int)) "register root in frontier" [| q0 |] cone.Cone.registers;
  Alcotest.(check (array int)) "no gates" [||] cone.Cone.gates

let test_fanout_cone () =
  let net, _, _, q0, q1, _, g2, g3 = tiny () in
  let cone = Cone.fanout net ~roots:[ q0 ] in
  let gl = Array.to_list cone.Cone.gates in
  Alcotest.(check bool) "g2, g3 forward" true (List.mem g2 gl && List.mem g3 gl);
  let rl = Array.to_list cone.Cone.registers in
  Alcotest.(check bool) "latching registers" true (List.mem q0 rl && List.mem q1 rl)

(* ------------------------------------------------------------------ *)
(* Unroll *)

(* Chain netlist: in -> c0 -> r0 -> c1 -> r1 -> c2 -> out
   where ci are single NOT gates. Levels from the output gate c2:
   level 0 = { c2 }, level 1 = { r1, c1 }, level 2 = { r0, c0 }, level 3+ empty
   (frontier reaches the input). *)
let chain () =
  let b = B.create () in
  let i = B.add_input b ~name:"i" in
  let r0 = B.add_dff b ~group:"r0" ~bit:0 ~init:false in
  let r1 = B.add_dff b ~group:"r1" ~bit:0 ~init:false in
  let c0 = B.add_gate b K.Not [| i |] in
  let c1 = B.add_gate b K.Not [| r0 |] in
  let c2 = B.add_gate b K.Not [| r1 |] in
  B.connect_dff b r0 ~d:c0;
  B.connect_dff b r1 ~d:c1;
  B.set_output b ~name:"o" c2;
  (N.of_builder b, r0, r1, c0, c1, c2)

let test_unroll_chain () =
  let net, r0, r1, c0, c1, c2 = chain () in
  let u = Unroll.compute net ~roots:[ c2 ] ~depth:4 ~fanout_depth:0 in
  let l0 = Unroll.level_at u 0 in
  Alcotest.(check (array int)) "level0 gates" [| c2 |] l0.Unroll.gates;
  Alcotest.(check (array int)) "level0 regs" [||] l0.Unroll.registers;
  let l1 = Unroll.level_at u 1 in
  Alcotest.(check (array int)) "level1 gates" [| c1 |] l1.Unroll.gates;
  Alcotest.(check (array int)) "level1 regs" [| r1 |] l1.Unroll.registers;
  let l2 = Unroll.level_at u 2 in
  Alcotest.(check (array int)) "level2 gates" [| c0 |] l2.Unroll.gates;
  Alcotest.(check (array int)) "level2 regs" [| r0 |] l2.Unroll.registers;
  let l3 = Unroll.level_at u 3 in
  Alcotest.(check (array int)) "level3 empty" [||] l3.Unroll.gates;
  Alcotest.(check (array int)) "level3 empty regs" [||] l3.Unroll.registers;
  Alcotest.(check (array int)) "all registers" [| r0; r1 |] (Unroll.all_registers u);
  Alcotest.(check (array int)) "all gates" [| c0; c1; c2 |] (Unroll.all_gates u);
  Alcotest.(check (array int)) "omega 1" [| c1; r1 |] (Unroll.omega u 1)

let test_unroll_feedback_saturates () =
  (* r.d = NOT r : the cone keeps returning the same register. *)
  let b = B.create () in
  let q = B.add_dff b ~group:"r" ~bit:0 ~init:false in
  let g = B.add_gate b K.Not [| q |] in
  B.connect_dff b q ~d:g;
  B.set_output b ~name:"o" g;
  let net = N.of_builder b in
  let u = Unroll.compute net ~roots:[ g ] ~depth:3 ~fanout_depth:0 in
  for i = 1 to 3 do
    let l = Unroll.level_at u i in
    Alcotest.(check (array int)) (Printf.sprintf "level %d regs" i) [| q |] l.Unroll.registers;
    Alcotest.(check (array int)) (Printf.sprintf "level %d gates" i) [| g |] l.Unroll.gates
  done

let test_unroll_fanout_side () =
  let net, r0, r1, _, c1, c2 = chain () in
  (* Forward from c1 (which feeds r1): fanout level -1 holds r1 and its
     forward logic c2. *)
  let u = Unroll.compute net ~roots:[ c1 ] ~depth:0 ~fanout_depth:2 in
  let lm1 = Unroll.level_at u (-1) in
  Alcotest.(check (array int)) "level -1 regs" [| r1 |] lm1.Unroll.registers;
  Alcotest.(check (array int)) "level -1 gates" [| c2 |] lm1.Unroll.gates;
  let lm2 = Unroll.level_at u (-2) in
  Alcotest.(check (array int)) "level -2 empty (c2 latches nothing)" [||] lm2.Unroll.registers;
  ignore r0

let test_unroll_bad_args () =
  let net, _, _, _, _, c2 = chain () in
  Alcotest.check_raises "negative depth" (Invalid_argument "Unroll.compute: negative depth")
    (fun () -> ignore (Unroll.compute net ~roots:[ c2 ] ~depth:(-1) ~fanout_depth:0));
  let u = Unroll.compute net ~roots:[ c2 ] ~depth:1 ~fanout_depth:0 in
  Alcotest.check_raises "out of range" (Invalid_argument "Unroll.level_at: depth out of range")
    (fun () -> ignore (Unroll.level_at u 2))

(* ------------------------------------------------------------------ *)
(* Dot export *)

let test_dot_full () =
  let net, _, _, _, _, _, _, _ = tiny () in
  let dot = Dot.to_dot net in
  Alcotest.(check bool) "digraph" true (String.length dot > 50);
  Alcotest.(check bool) "has header" true (String.sub dot 0 7 = "digraph");
  (* Every node appears. *)
  for i = 0 to N.num_nodes net - 1 do
    let needle = Printf.sprintf "n%d " i in
    let found = ref false in
    String.iteri
      (fun off _ ->
        if off + String.length needle <= String.length dot
           && String.sub dot off (String.length needle) = needle
        then found := true)
      dot;
    Alcotest.(check bool) (Printf.sprintf "node %d present" i) true !found
  done

let test_dot_only_restricts () =
  let net, a, bb, _, _, g1, g2, _ = tiny () in
  let dot = Dot.to_dot ~only:[ a; bb; g1 ] net in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "a -> g1 edge kept" true (contains (Printf.sprintf "n%d -> n%d" a g1));
  Alcotest.(check bool) "g2 excluded" false (contains (Printf.sprintf "n%d [" g2))

let test_dot_cone () =
  let net, _, _, _, _, _, g2, _ = tiny () in
  let cone = Cone.fanin net ~roots:[ g2 ] in
  let dot = Dot.cone_to_dot net cone in
  Alcotest.(check bool) "nonempty" true (String.length dot > 50)

(* ------------------------------------------------------------------ *)
(* TMR transform *)

(* A 4-bit counter netlist built at IR level (adder chain). *)
let counter_net () =
  let b = B.create () in
  let q = Array.init 4 (fun bit -> B.add_dff b ~group:"cnt" ~bit ~init:false) in
  (* increment: sum_i = q_i xor carry_i; carry_{i+1} = q_i and carry_i, carry_0 = 1 *)
  let one = B.add_const b true in
  let carry = ref one in
  Array.iter
    (fun qi ->
      let s = B.add_gate b K.Xor [| qi; !carry |] in
      carry := B.add_gate b K.And [| qi; !carry |];
      B.connect_dff b qi ~d:s)
    q;
  B.set_output b ~name:"msb" q.(3);
  N.of_builder b

let run_counter net cycles flips_at =
  (* flips_at: (cycle, group, bit) single flips applied to stored state. *)
  let sim = Fmc_gatesim.Cycle_sim.create net in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (fc, group, bit) ->
        if fc = c then Fmc_gatesim.Cycle_sim.flip sim (N.register_group net group).(bit))
      flips_at;
    Fmc_gatesim.Cycle_sim.step sim
  done;
  Fmc_gatesim.Cycle_sim.read_group sim "cnt"

let test_tmr_preserves_behavior () =
  let net = counter_net () in
  let tmr = Tmr.protect net ~registers:(N.dffs net) in
  for cycles = 1 to 20 do
    Alcotest.(check int)
      (Printf.sprintf "count after %d cycles" cycles)
      (run_counter net cycles []) (run_counter tmr cycles [])
  done

let test_tmr_masks_single_upset () =
  let net = counter_net () in
  let tmr = Tmr.protect net ~registers:(N.dffs net) in
  (* Flip one copy of bit 2 mid-run: the unprotected counter corrupts, the
     TMR counter outvotes it. *)
  let clean = run_counter net 10 [] in
  let hurt = run_counter net 10 [ (5, "cnt", 2) ] in
  Alcotest.(check bool) "unprotected corrupts" true (hurt <> clean);
  let tmr_hurt = run_counter tmr 10 [ (5, "cnt", 2) ] in
  Alcotest.(check int) "tmr outvotes the upset" clean tmr_hurt;
  (* Hitting a shadow copy is equally harmless. *)
  let tmr_shadow = run_counter tmr 10 [ (5, "cnt" ^ Tmr.voter_suffix 1, 2) ] in
  Alcotest.(check int) "shadow upset harmless" clean tmr_shadow

let test_tmr_double_upset_breaks_through () =
  let net = counter_net () in
  let tmr = Tmr.protect net ~registers:(N.dffs net) in
  let clean = run_counter tmr 10 [] in
  let double =
    run_counter tmr 10 [ (5, "cnt", 2); (5, "cnt" ^ Tmr.voter_suffix 1, 2) ]
  in
  Alcotest.(check bool) "two of three copies win the vote" true (double <> clean)

let test_tmr_structure () =
  let net = counter_net () in
  let tmr = Tmr.protect net ~registers:(N.dffs net) in
  Alcotest.(check int) "3x flip-flops" (3 * Array.length (N.dffs net)) (Array.length (N.dffs tmr));
  (* 4 voter gates per protected bit (3 AND + one 3-input OR). *)
  Alcotest.(check int) "voter gates added"
    (Array.length (N.gates net) + (4 * Array.length (N.dffs net)))
    (Array.length (N.gates tmr));
  (* Shadow groups exist. *)
  Alcotest.(check int) "shadow group width" 4
    (Array.length (N.register_group tmr ("cnt" ^ Tmr.voter_suffix 1)));
  (* Partial protection also works. *)
  let partial = Tmr.protect net ~registers:[| (N.dffs net).(0) |] in
  Alcotest.(check int) "one bit protected" (Array.length (N.dffs net) + 2)
    (Array.length (N.dffs partial))

let test_tmr_rejects_non_dff () =
  let net = counter_net () in
  Alcotest.check_raises "gate rejected" (Invalid_argument "Tmr.protect: node is not a flip-flop")
    (fun () -> ignore (Tmr.protect net ~registers:[| (N.gates net).(0) |]))

(* ------------------------------------------------------------------ *)
(* Random-netlist properties *)

let random_netlist rng ~num_inputs ~num_regs ~num_gates =
  let b = B.create () in
  let open Fmc_prelude in
  let nodes = ref [] in
  for i = 0 to num_inputs - 1 do
    nodes := B.add_input b ~name:(Printf.sprintf "i%d" i) :: !nodes
  done;
  let regs = Array.init num_regs (fun i -> B.add_dff b ~group:(Printf.sprintf "r%d" i) ~bit:0 ~init:false) in
  Array.iter (fun r -> nodes := r :: !nodes) regs;
  for _ = 1 to num_gates do
    let pool = Array.of_list !nodes in
    let pick () = Rng.choose rng pool in
    let kind = Rng.choose rng [| K.And; K.Or; K.Xor; K.Nand; K.Nor; K.Not; K.Mux |] in
    let fanins =
      match K.gate_arity kind with
      | Some n -> Array.init n (fun _ -> pick ())
      | None -> Array.init (2 + Rng.int rng 2) (fun _ -> pick ())
    in
    nodes := B.add_gate b kind fanins :: !nodes
  done;
  let pool = Array.of_list !nodes in
  Array.iter (fun r -> B.connect_dff b r ~d:(Rng.choose rng pool)) regs;
  B.set_output b ~name:"o" pool.(0);
  N.of_builder b

let netlist_props =
  [
    QCheck.Test.make ~name:"random netlists freeze with valid topo order" ~count:50
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Fmc_prelude.Rng.create seed in
        let net = random_netlist rng ~num_inputs:3 ~num_regs:4 ~num_gates:30 in
        let pos = Hashtbl.create 64 in
        Array.iteri (fun i g -> Hashtbl.replace pos g i) (N.gates net);
        let ok = ref true in
        Array.iter
          (fun g ->
            Array.iter
              (fun f ->
                match N.kind net f with
                | K.Gate _ -> if Hashtbl.find pos f >= Hashtbl.find pos g then ok := false
                | _ -> ())
              (N.fanins net g))
          (N.gates net);
        !ok);
    QCheck.Test.make ~name:"fanin cone is closed under combinational fan-in" ~count:50
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Fmc_prelude.Rng.create seed in
        let net = random_netlist rng ~num_inputs:3 ~num_regs:4 ~num_gates:30 in
        let root = (N.gates net).(Array.length (N.gates net) - 1) in
        let cone = Cone.fanin net ~roots:[ root ] in
        let ok = ref true in
        Array.iter
          (fun g ->
            Array.iter
              (fun f ->
                match N.kind net f with
                | K.Gate _ -> if not (Cone.mem_gate cone f) then ok := false
                | K.Dff _ -> if not (Cone.mem_register cone f) then ok := false
                | K.Input | K.Const _ -> ())
              (N.fanins net g))
          cone.Cone.gates;
        !ok);
    QCheck.Test.make ~name:"fanout registers' D inputs are reachable from roots" ~count:50
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Fmc_prelude.Rng.create seed in
        let net = random_netlist rng ~num_inputs:3 ~num_regs:4 ~num_gates:30 in
        let root = (N.inputs net).(0) in
        let cone = Cone.fanout net ~roots:[ root ] in
        Array.for_all
          (fun r ->
            let d = N.dff_d net r in
            d = root || Cone.mem_gate cone d)
          cone.Cone.registers);
    (* Duality (paper §4, Observation 1): a gate lies in the forward cone of
       a register exactly when that register lies in the sequential frontier
       of the gate's backward cone — both say "there is a purely
       combinational path from r's Q to g". *)
    QCheck.Test.make ~name:"fanin and fanout cones are duals" ~count:30
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Fmc_prelude.Rng.create seed in
        let net = random_netlist rng ~num_inputs:3 ~num_regs:4 ~num_gates:30 in
        let ok = ref true in
        Array.iter
          (fun r ->
            let forward = Cone.fanout net ~roots:[ r ] in
            Array.iter
              (fun g ->
                let backward = Cone.fanin net ~roots:[ g ] in
                if Cone.mem_gate forward g <> Cone.mem_register backward r then ok := false)
              (N.gates net))
          (N.dffs net);
        !ok);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "netlist"
    [
      ( "kind",
        [
          Alcotest.test_case "gate evaluation" `Quick test_kind_eval;
          Alcotest.test_case "arity checks" `Quick test_kind_eval_arity;
          Alcotest.test_case "controlling values" `Quick test_kind_controlling;
        ] );
      ( "builder",
        [
          Alcotest.test_case "const hash-consing" `Quick test_builder_const_hashcons;
          Alcotest.test_case "arity validation" `Quick test_builder_arity_validation;
          Alcotest.test_case "dff two-phase protocol" `Quick test_builder_dff_protocol;
          Alcotest.test_case "unconnected dff rejected" `Quick test_builder_unconnected_dff_rejected;
          Alcotest.test_case "duplicate output rejected" `Quick test_builder_duplicate_output;
          Alcotest.test_case "feedback through dff accepted" `Quick test_combinational_cycle_detected;
          Alcotest.test_case "group bit density enforced" `Quick test_group_density_enforced;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "unknown names rejected helpfully" `Quick test_netlist_unknown_names;
          Alcotest.test_case "structure accessors" `Quick test_netlist_structure;
          Alcotest.test_case "topological order" `Quick test_netlist_topo_order;
          Alcotest.test_case "fanouts" `Quick test_netlist_fanouts;
          Alcotest.test_case "levels" `Quick test_netlist_levels;
          Alcotest.test_case "kind counts" `Quick test_netlist_counts;
        ] );
      ( "cone",
        [
          Alcotest.test_case "fanin cone" `Quick test_fanin_cone;
          Alcotest.test_case "fanin cone of register root" `Quick test_fanin_cone_of_register_root;
          Alcotest.test_case "fanout cone" `Quick test_fanout_cone;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "chain levels" `Quick test_unroll_chain;
          Alcotest.test_case "feedback saturates" `Quick test_unroll_feedback_saturates;
          Alcotest.test_case "fanout side" `Quick test_unroll_fanout_side;
          Alcotest.test_case "argument validation" `Quick test_unroll_bad_args;
        ] );
      ( "tmr",
        [
          Alcotest.test_case "preserves behavior" `Quick test_tmr_preserves_behavior;
          Alcotest.test_case "masks single upsets" `Quick test_tmr_masks_single_upset;
          Alcotest.test_case "double upsets break through" `Quick test_tmr_double_upset_breaks_through;
          Alcotest.test_case "structure" `Quick test_tmr_structure;
          Alcotest.test_case "rejects non-flip-flops" `Quick test_tmr_rejects_non_dff;
        ] );
      ( "dot",
        [
          Alcotest.test_case "full export" `Quick test_dot_full;
          Alcotest.test_case "only restricts" `Quick test_dot_only_restricts;
          Alcotest.test_case "cone export" `Quick test_dot_cone;
        ] );
      ("props", q netlist_props);
    ]
