(* Tests for the Fmc_obs observability library: histogram semantics and
   quantiles, snapshot merge algebra (incl. qcheck associativity /
   commutativity), span ring-buffer behavior, and well-formedness of the
   Prometheus / JSON / Chrome-trace renderings. *)

module Metrics = Fmc_obs.Metrics
module Span = Fmc_obs.Span
module Progress = Fmc_obs.Progress
module Obs = Fmc_obs.Obs
module Clock = Fmc_obs.Clock

let exact = Alcotest.(check (float 0.))

(* ------------------------------------------------------------------ *)
(* A minimal JSON syntax checker: enough to certify the emitted strings
   are parseable JSON without pulling in a JSON library. Returns the
   value's end position or raises [Failure]. *)

let check_json s =
  let n = String.length s in
  let fail i msg = failwith (Printf.sprintf "json error at %d: %s" i msg) in
  let rec skip_ws i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then skip_ws (i + 1) else i in
  let rec value i =
    let i = skip_ws i in
    if i >= n then fail i "eof"
    else
      match s.[i] with
      | '{' -> obj (skip_ws (i + 1)) true
      | '[' -> arr (skip_ws (i + 1)) true
      | '"' -> string_lit (i + 1)
      | 't' -> lit i "true"
      | 'f' -> lit i "false"
      | 'n' -> lit i "null"
      | '-' | '0' .. '9' -> number i
      | c -> fail i (Printf.sprintf "unexpected %C" c)
  and lit i l =
    if i + String.length l <= n && String.sub s i (String.length l) = l then i + String.length l
    else fail i ("expected " ^ l)
  and number i =
    let j = ref (if s.[i] = '-' then i + 1 else i) in
    let digits k = let k0 = !j in (j := k); while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      if !j = k0 && false then () else if !j = k then fail k "digit expected"
    in
    digits !j;
    if !j < n && s.[!j] = '.' then (incr j; digits !j);
    if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
      incr j;
      if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
      digits !j
    end;
    !j
  and string_lit i =
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
          if i + 1 >= n then fail i "dangling escape"
          else (
            match s.[i + 1] with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> string_lit (i + 2)
            | 'u' ->
                if i + 5 < n then string_lit (i + 6) else fail i "short \\u escape"
            | c -> fail i (Printf.sprintf "bad escape %C" c))
      | c when Char.code c < 0x20 -> fail i "raw control char in string"
      | _ -> string_lit (i + 1)
  and obj i first =
    if i < n && s.[i] = '}' then i + 1
    else begin
      let i = if first then i else skip_ws i in
      if i >= n || s.[i] <> '"' then fail i "object key expected";
      let i = skip_ws (string_lit (i + 1)) in
      if i >= n || s.[i] <> ':' then fail i "colon expected";
      let i = skip_ws (value (i + 1)) in
      if i < n && s.[i] = ',' then obj (skip_ws (i + 1)) false
      else if i < n && s.[i] = '}' then i + 1
      else fail i "comma or } expected"
    end
  and arr i first =
    if i < n && s.[i] = ']' then i + 1
    else begin
      let i = skip_ws (if first then i else i) in
      let i = skip_ws (value i) in
      if i < n && s.[i] = ',' then arr (skip_ws (i + 1)) false
      else if i < n && s.[i] = ']' then i + 1
      else fail i "comma or ] expected"
    end
  in
  let last = skip_ws (value 0) in
  if last <> n then failwith (Printf.sprintf "trailing garbage at %d" last)

let valid_json what s =
  match check_json s with
  | () -> ()
  | exception Failure msg -> Alcotest.failf "%s is not valid JSON (%s): %s" what msg s

(* ------------------------------------------------------------------ *)
(* Histograms. *)

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 10.; 20.; 30. |] "h" in
  (* Upper bounds are inclusive: an observation equal to a bound lands in
     that bucket, one just above spills into the next. *)
  List.iter (Metrics.observe h) [ 10.; 10.0000001; 20.; 30.; 31.; 1e9 ];
  match Metrics.snapshot reg with
  | [ ("h", (_, Metrics.Histo d)) ] ->
      Alcotest.(check (array int)) "per-bucket counts" [| 1; 2; 1; 2 |] d.Metrics.counts;
      Alcotest.(check int) "count" 6 d.Metrics.count;
      exact "sum" (10. +. 10.0000001 +. 20. +. 30. +. 31. +. 1e9) d.Metrics.sum
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_histogram_quantile () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 10.; 20.; 30. |] "h" in
  for v = 1 to 30 do
    Metrics.observe h (float_of_int v)
  done;
  let d =
    match Metrics.snapshot reg with
    | [ ("h", (_, Metrics.Histo d)) ] -> d
    | _ -> Alcotest.fail "unexpected snapshot shape"
  in
  (* Uniform mass over (0, 30]: the interpolated median is 15, the first
     decile 3, the maximum the last bound. *)
  Alcotest.(check (float 1e-9)) "median" 15. (Metrics.quantile d 0.5);
  Alcotest.(check (float 1e-9)) "q10" 3. (Metrics.quantile d 0.1);
  Alcotest.(check (float 1e-9)) "q100" 30. (Metrics.quantile d 1.);
  (* Overflow observations clamp to the last finite bound. *)
  Metrics.observe h 1e12;
  let d =
    match Metrics.snapshot reg with
    | [ ("h", (_, Metrics.Histo d)) ] -> d
    | _ -> assert false
  in
  Alcotest.(check (float 1e-9)) "overflow clamps" 30. (Metrics.quantile d 1.);
  exact "empty histogram" 0.
    (Metrics.quantile { Metrics.buckets = [| 1. |]; counts = [| 0; 0 |]; sum = 0.; count = 0 } 0.5);
  Alcotest.(check bool) "out-of-range q raises" true
    (try
       ignore (Metrics.quantile d 1.5);
       false
     with Invalid_argument _ -> true)

let test_registry_guards () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  Alcotest.(check bool) "negative add raises" true
    (try
       Metrics.add c (-1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad name raises" true
    (try
       ignore (Metrics.counter reg "bad name");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Metrics.gauge reg "c");
       false
     with Invalid_argument _ -> true);
  ignore (Metrics.histogram reg ~buckets:[| 1.; 2. |] "h");
  Alcotest.(check bool) "bucket mismatch raises" true
    (try
       ignore (Metrics.histogram reg ~buckets:[| 1.; 3. |] "h");
       false
     with Invalid_argument _ -> true);
  (* Idempotent re-registration returns the same cell. *)
  Metrics.inc c;
  Metrics.inc (Metrics.counter reg "c");
  match List.assoc_opt "c" (Metrics.snapshot reg) with
  | Some (_, Metrics.Counter v) -> exact "shared cell" 2. v
  | _ -> Alcotest.fail "counter missing"

(* ------------------------------------------------------------------ *)
(* Merge algebra across simulated worker snapshots. *)

let worker_snapshot ~samples ~gauge_v ~obs =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"samples" "fmc_samples_total" in
  let g = Metrics.gauge reg "fmc_ssf_estimate" in
  let h = Metrics.histogram reg ~buckets:[| 1.; 10. |] "fmc_is_weight" in
  for _ = 1 to samples do
    Metrics.inc c
  done;
  Metrics.set g gauge_v;
  List.iter (Metrics.observe h) obs;
  Metrics.snapshot reg

let test_merge_workers () =
  let a = worker_snapshot ~samples:120 ~gauge_v:0.25 ~obs:[ 0.5; 5.; 50. ] in
  let b = worker_snapshot ~samples:80 ~gauge_v:0.75 ~obs:[ 0.1; 0.2 ] in
  let m = Metrics.merge a b in
  (match List.assoc_opt "fmc_samples_total" m with
  | Some (help, Metrics.Counter v) ->
      exact "counters sum" 200. v;
      Alcotest.(check string) "help survives" "samples" help
  | _ -> Alcotest.fail "counter lost");
  (match List.assoc_opt "fmc_ssf_estimate" m with
  | Some (_, Metrics.Gauge v) -> exact "gauges keep max" 0.75 v
  | _ -> Alcotest.fail "gauge lost");
  (match List.assoc_opt "fmc_is_weight" m with
  | Some (_, Metrics.Histo d) ->
      Alcotest.(check (array int)) "histograms add element-wise" [| 3; 1; 1 |] d.Metrics.counts;
      Alcotest.(check int) "count" 5 d.Metrics.count
  | _ -> Alcotest.fail "histogram lost");
  (* Disjoint names are kept from both sides. *)
  let only = worker_snapshot ~samples:1 ~gauge_v:0. ~obs:[] in
  let extra_reg = Metrics.create () in
  ignore (Metrics.counter extra_reg "zz_extra");
  let m2 = Metrics.merge only (Metrics.snapshot extra_reg) in
  Alcotest.(check int) "union of names" 4 (List.length m2);
  (* [absorb] agrees with [merge]. *)
  let reg = Metrics.create () in
  Metrics.absorb reg a;
  Metrics.absorb reg b;
  Alcotest.(check bool) "absorb = merge" true (Metrics.snapshot reg = m)

let small_snapshot_gen =
  (* A fixed name universe with a fixed kind per name (so any two
     generated snapshots are merge-compatible), each name optionally
     present (exercising the disjoint-name paths). Small-integer floats
     keep FP addition exact, so associativity holds bitwise, not just
     approximately. *)
  QCheck.Gen.(
    let counter v = ("alpha", ("", Metrics.Counter (float_of_int v))) in
    let gauge v = ("beta", ("", Metrics.Gauge (float_of_int v))) in
    let histo (a, b) =
      ( "gamma",
        ( "",
          Metrics.Histo
            {
              Metrics.buckets = [| 1.; 2. |];
              counts = [| a; b; 0 |];
              sum = float_of_int (a + b);
              count = a + b;
            } ) )
    in
    map3
      (fun c g h -> List.filter_map Fun.id [ c; g; h ])
      (opt (map counter (int_bound 50)))
      (opt (map gauge (int_bound 50)))
      (opt (map histo (pair (int_bound 20) (int_bound 20)))))

let qcheck_merge_assoc_comm =
  let gen =
    QCheck.make
      ~print:(fun (a, b, c) ->
        Printf.sprintf "%s / %s / %s" (Metrics.to_json a) (Metrics.to_json b) (Metrics.to_json c))
      QCheck.Gen.(triple small_snapshot_gen small_snapshot_gen small_snapshot_gen)
  in
  QCheck.Test.make ~name:"merge is associative and commutative" ~count:500 gen (fun (a, b, c) ->
      Metrics.merge a (Metrics.merge b c) = Metrics.merge (Metrics.merge a b) c
      && Metrics.merge a b = Metrics.merge b a)

(* ------------------------------------------------------------------ *)
(* Spans and the trace export. *)

let with_fake_clock f =
  let t = ref 1000. in
  Clock.set_source (fun () -> !t);
  Fun.protect ~finally:(fun () -> Clock.set_source Unix.gettimeofday) (fun () -> f t)

let test_span_ring () =
  with_fake_clock @@ fun t ->
  let tr = Span.create ~capacity:4 ~tid:3 () in
  for i = 1 to 10 do
    Span.with_span tr (Printf.sprintf "s%d" i) (fun () -> t := !t +. 0.001)
  done;
  Alcotest.(check int) "recorded" 10 (Span.recorded tr);
  Alcotest.(check int) "dropped" 6 (Span.dropped tr);
  let evs = Span.events tr in
  Alcotest.(check (list string)) "ring keeps the most recent, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ]
    (List.map (fun e -> e.Span.ev_name) evs);
  Alcotest.(check bool) "timestamps ascend" true
    (let ts = List.map (fun e -> e.Span.ev_ts_us) evs in
     List.sort compare ts = ts);
  (* Aggregate totals are exact despite the wrap. *)
  Alcotest.(check int) "totals count all spans" 10
    (List.fold_left (fun acc (_, (c, _)) -> acc + c) 0 (Span.totals tr));
  (* A raising span is still recorded. *)
  (try Span.with_span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "raised span recorded" 11 (Span.recorded tr)

let test_trace_json () =
  with_fake_clock @@ fun t ->
  let tr = Span.create ~tid:2 () in
  Span.with_span tr ~cat:"engine" "restore" (fun () -> t := !t +. 0.000123);
  Span.with_span tr "needs \"escaping\"\n" (fun () -> ());
  let json = Span.to_chrome_json (Span.events tr) in
  valid_json "chrome trace" json;
  Alcotest.(check bool) "has displayTimeUnit" true
    (String.length json > 20 && String.sub json 0 20 = "{\"displayTimeUnit\":\"");
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "complete events" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "tid carried" true (contains "\"tid\":2");
  Alcotest.(check bool) "duration in us" true (contains "\"dur\":123.000")

let test_span_absorb () =
  with_fake_clock @@ fun t ->
  let parent = Span.create ~capacity:16 ~tid:0 () in
  let child = Span.create ~capacity:16 ~tid:1 () in
  Span.with_span parent "p" (fun () -> t := !t +. 1e-3);
  Span.with_span child "c" (fun () -> t := !t +. 1e-3);
  Span.absorb parent child;
  Alcotest.(check int) "events merged" 2 (List.length (Span.events parent));
  Alcotest.(check (list string)) "totals merged" [ "c"; "p" ]
    (List.map fst (Span.totals parent))

(* ------------------------------------------------------------------ *)
(* Renderings and the Obs handle. *)

let test_prometheus_format () =
  let snap = worker_snapshot ~samples:3 ~gauge_v:0.5 ~obs:[ 0.5; 5.; 50. ] in
  let text = Metrics.to_prometheus snap in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  Alcotest.(check bool) "help" true (has "# HELP fmc_samples_total samples");
  Alcotest.(check bool) "type counter" true (has "# TYPE fmc_samples_total counter");
  Alcotest.(check bool) "counter value" true (has "fmc_samples_total 3");
  Alcotest.(check bool) "type histogram" true (has "# TYPE fmc_is_weight histogram");
  (* Buckets are cumulative and terminated by +Inf. *)
  Alcotest.(check bool) "le=1" true (has "fmc_is_weight_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "le=10 cumulative" true (has "fmc_is_weight_bucket{le=\"10\"} 2");
  Alcotest.(check bool) "+Inf total" true (has "fmc_is_weight_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "count series" true (has "fmc_is_weight_count 3");
  valid_json "metrics json" (Metrics.to_json snap)

let test_progress_jsonl () =
  let p =
    {
      Progress.n = 50;
      total = 400;
      estimate = 0.031;
      half_width = 0.012;
      ess = 42.5;
      accept_rate = 0.99;
      quarantine_rate = 0.01;
      samples_per_sec = 1234.5;
      elapsed_s = 0.04;
    }
  in
  let line = Progress.to_jsonl p in
  valid_json "progress point" line;
  List.iter
    (fun key ->
      let sub = "\"" ^ key ^ "\":" in
      let n = String.length sub and m = String.length line in
      let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
      Alcotest.(check bool) (key ^ " present") true (go 0))
    [ "n"; "total"; "ssf"; "ci_half_width"; "ess"; "accept_rate"; "quarantine_rate";
      "samples_per_sec"; "elapsed_s" ]

let test_obs_handle () =
  Alcotest.(check bool) "disabled is disabled" false (Obs.enabled Obs.disabled);
  exact "span passthrough" 42. (Obs.span Obs.disabled "x" (fun () -> 42.));
  Alcotest.(check bool) "fork of disabled is disabled" false
    (Obs.enabled (Obs.fork Obs.disabled ~tid:5));
  let reg = Metrics.create () in
  let tracer = Span.create ~capacity:8 () in
  let parent = Obs.create ~metrics:reg ~tracer () in
  let worker = Obs.fork parent ~tid:7 in
  (match worker.Obs.tracer with
  | Some tr -> Alcotest.(check int) "worker tid" 7 (Span.tid tr)
  | None -> Alcotest.fail "fork lost the tracer");
  (match worker.Obs.metrics with
  | Some wreg ->
      Metrics.inc (Metrics.counter wreg "fmc_samples_total");
      Obs.span worker "w" (fun () -> ())
  | None -> Alcotest.fail "fork lost the registry");
  Obs.absorb parent worker;
  (match List.assoc_opt "fmc_samples_total" (Metrics.snapshot reg) with
  | Some (_, Metrics.Counter v) -> exact "worker counter absorbed" 1. v
  | _ -> Alcotest.fail "counter not absorbed");
  Alcotest.(check int) "worker span absorbed" 1 (List.length (Span.events tracer))

(* ------------------------------------------------------------------ *)
(* Fleet observability (ISSUE 8): deterministic trace ids, the telemetry
   wire codec, the embedded scrape endpoint, and cross-process trace
   stitching. *)

module Traceid = Fmc_obs.Traceid
module Telemetry = Fmc_obs.Telemetry
module Fleet = Fmc_obs.Fleet
module Httpd = Fmc_obs.Httpd

let contains_sub hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  go 0

let test_traceid () =
  let fp = "v3 mixed illegal_write n=5000 seed=42 shard=1000 budget=-" in
  let t1 = Traceid.trace_id ~fingerprint:fp in
  Alcotest.(check string) "trace id is a pure function" t1 (Traceid.trace_id ~fingerprint:fp);
  Alcotest.(check int) "32 chars" 32 (String.length t1);
  Alcotest.(check bool) "valid" true (Traceid.valid_trace_id t1);
  Alcotest.(check bool) "campaigns differ" true (t1 <> Traceid.trace_id ~fingerprint:(fp ^ "x"));
  let s0 = Traceid.span_id ~fingerprint:fp ~shard:0 in
  let s1 = Traceid.span_id ~fingerprint:fp ~shard:1 in
  Alcotest.(check bool) "span ids valid" true
    (Traceid.valid_span_id s0 && Traceid.valid_span_id s1);
  Alcotest.(check bool) "shards differ" true (s0 <> s1);
  (* Stability across restarts: the id depends on nothing but the
     arguments, so a resumed campaign re-issues the same ids. *)
  Alcotest.(check string) "span id stable" s0 (Traceid.span_id ~fingerprint:fp ~shard:0);
  Alcotest.(check bool) "span id is not trace-id shaped" false (Traceid.valid_trace_id s0);
  Alcotest.(check bool) "negative shard raises" true
    (try
       ignore (Traceid.span_id ~fingerprint:fp ~shard:(-1));
       false
     with Invalid_argument _ -> true)

let test_telemetry_roundtrip () =
  with_fake_clock @@ fun t ->
  t := 1234.5678;
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg ~help:"wire bytes" "fmc_dist_bytes_total") 17.25;
  (* 0.1 has no finite binary expansion — %h must round-trip it bit-exactly. *)
  Metrics.set (Metrics.gauge reg "fmc_worker_rate") 0.1;
  let h = Metrics.histogram reg ~buckets:[| 0.001; 0.1; 1. |] "fmc_shard_seconds" in
  List.iter (Metrics.observe h) [ 0.0005; 0.25; 3.5 ];
  let ev =
    {
      Span.ev_name = "shard 3 \"odd\"\nname %";
      ev_cat = "dist";
      ev_tid = 7;
      ev_ts_us = 123.456789;
      ev_dur_us = 0.1 +. 0.2;
    }
  in
  let batch =
    Telemetry.make
      ~trace_id:(Traceid.trace_id ~fingerprint:"fp")
      ~metrics:(Metrics.snapshot reg)
      ~spans:
        [ { Telemetry.ss_span_id = Traceid.span_id ~fingerprint:"fp" ~shard:3; ss_event = ev } ]
      ()
  in
  let blob = Telemetry.encode batch in
  (match Telemetry.decode blob with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok got -> Alcotest.(check bool) "bit-exact roundtrip" true (got = batch));
  Alcotest.(check bool) "empty batch roundtrips" true
    (match Telemetry.decode (Telemetry.encode (Telemetry.make ())) with
    | Ok _ -> true
    | Error _ -> false);
  Alcotest.(check bool) "garbage is an Error, not an exception" true
    (match Telemetry.decode "not a batch\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "truncation is an Error" true
    (match Telemetry.decode (String.sub blob 0 (String.length blob / 2)) with
    | Error _ -> true
    | Ok _ -> false)

let test_httpd_parse () =
  let ok line m p =
    match Httpd.parse_request line with
    | Ok (m', p') ->
        Alcotest.(check string) (line ^ " method") m m';
        Alcotest.(check string) (line ^ " path") p p'
    | Error e -> Alcotest.failf "%s: unexpected parse error %s" line e
  in
  ok "GET /metrics HTTP/1.0" "GET" "/metrics";
  ok "HEAD /healthz HTTP/1.1" "HEAD" "/healthz";
  ok "GET /campaigns?verbose=1&x=2 HTTP/1.1" "GET" "/campaigns";
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" line) true
        (match Httpd.parse_request line with Error _ -> true | Ok _ -> false))
    [ ""; "GET"; "/metrics" ]

let test_httpd_server () =
  let reg = Metrics.create () in
  Metrics.inc (Metrics.counter reg ~help:"requests" "fmc_test_requests_total");
  let routes =
    [
      ("/ping", fun () -> Httpd.text "pong");
      ("/metrics", fun () -> Httpd.text (Metrics.to_prometheus (Metrics.snapshot reg)));
      ("/boom", fun () -> failwith "handler exploded");
    ]
  in
  let srv = Httpd.start ~bind_addr:"127.0.0.1" ~port:0 ~routes () in
  Fun.protect ~finally:(fun () -> Httpd.stop srv) @@ fun () ->
  let port = Httpd.port srv in
  Alcotest.(check bool) "ephemeral port bound" true (port > 0);
  let get path = Httpd.get ~host:"127.0.0.1" ~port ~path () in
  (match get "/ping" with
  | Ok (200, "pong") -> ()
  | Ok (st, body) -> Alcotest.failf "/ping: HTTP %d %S" st body
  | Error e -> Alcotest.failf "/ping: %s" e);
  (match get "/nope" with
  | Ok (404, _) -> ()
  | Ok (st, _) -> Alcotest.failf "expected 404, got %d" st
  | Error e -> Alcotest.failf "/nope: %s" e);
  (* A raising handler is a 500, never a dead server. *)
  (match get "/boom" with
  | Ok (500, _) -> ()
  | Ok (st, _) -> Alcotest.failf "expected 500, got %d" st
  | Error e -> Alcotest.failf "/boom: %s" e);
  (match get "/metrics" with
  | Ok (200, body) ->
      let lines = String.split_on_char '\n' body in
      Alcotest.(check bool) "exposition TYPE line" true
        (List.mem "# TYPE fmc_test_requests_total counter" lines);
      Alcotest.(check bool) "exposition sample line" true
        (List.mem "fmc_test_requests_total 1" lines)
  | Ok (st, _) -> Alcotest.failf "/metrics: HTTP %d" st
  | Error e -> Alcotest.failf "/metrics: %s" e);
  (* stop is idempotent (the protect finally stops it again). *)
  Httpd.stop srv

let test_fleet_stitching () =
  with_fake_clock @@ fun t ->
  let fp = "fleet-test-fp" in
  let batch ~name ~wall ~samples =
    t := wall;
    let reg = Metrics.create () in
    Metrics.add (Metrics.counter reg "fmc_dist_shard_results_total") (float_of_int samples);
    let ev =
      { Span.ev_name = name ^ "-shard"; ev_cat = "dist"; ev_tid = 1; ev_ts_us = 10.; ev_dur_us = 5. }
    in
    Telemetry.make
      ~trace_id:(Traceid.trace_id ~fingerprint:fp)
      ~metrics:(Metrics.snapshot reg)
      ~spans:
        [ { Telemetry.ss_span_id = Traceid.span_id ~fingerprint:fp ~shard:0; ss_event = ev } ]
      ()
  in
  let fl = Fleet.create () in
  Fleet.absorb fl ~worker:"w2" (batch ~name:"w2" ~wall:1002. ~samples:3);
  Fleet.absorb fl ~worker:"w1" (batch ~name:"w1" ~wall:1001. ~samples:2);
  (* Snapshots are cumulative: a later batch replaces, never adds. *)
  Fleet.absorb fl ~worker:"w1" (batch ~name:"w1" ~wall:1003. ~samples:5);
  Alcotest.(check (list string)) "workers sorted" [ "w1"; "w2" ] (List.map fst (Fleet.workers fl));
  Alcotest.(check string) "campaign trace id surfaced"
    (Traceid.trace_id ~fingerprint:fp)
    (Fleet.trace_id fl);
  Alcotest.(check int) "span summaries retained" 3 (Fleet.span_count fl);
  let base =
    let reg = Metrics.create () in
    Metrics.add (Metrics.counter reg "fmc_dist_shard_results_total") 1.;
    Metrics.snapshot reg
  in
  (match Metrics.find (Fleet.merged_snapshot fl ~base) "fmc_dist_shard_results_total" with
  | Some (Metrics.Counter v) -> exact "base + latest worker snapshots" 9. v
  | _ -> Alcotest.fail "merged counter missing");
  let own =
    [ { Span.ev_name = "sweep"; ev_cat = "dist"; ev_tid = 0; ev_ts_us = 1.; ev_dur_us = 2. } ]
  in
  let json = Fleet.to_chrome_json ~own_label:"coordinator" ~own_events:own fl in
  valid_json "stitched fleet trace" json;
  Alcotest.(check bool) "own track labelled" true (contains_sub json "coordinator");
  Alcotest.(check bool) "worker tracks named" true
    (contains_sub json "process_name" && contains_sub json "w1" && contains_sub json "w2");
  (* Distinct pids: this process on 1, each worker on its own. *)
  List.iter
    (fun pid ->
      Alcotest.(check bool) (Printf.sprintf "pid %d present" pid) true
        (contains_sub json (Printf.sprintf "\"pid\":%d" pid)))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantile;
          Alcotest.test_case "registry guards" `Quick test_registry_guards;
          Alcotest.test_case "merge across worker snapshots" `Quick test_merge_workers;
          QCheck_alcotest.to_alcotest qcheck_merge_assoc_comm;
        ] );
      ( "spans",
        [
          Alcotest.test_case "ring buffer" `Quick test_span_ring;
          Alcotest.test_case "chrome trace json" `Quick test_trace_json;
          Alcotest.test_case "absorb" `Quick test_span_absorb;
        ] );
      ( "render",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus_format;
          Alcotest.test_case "progress jsonl" `Quick test_progress_jsonl;
          Alcotest.test_case "obs handle" `Quick test_obs_handle;
        ] );
      ("traceid", [ Alcotest.test_case "deterministic ids" `Quick test_traceid ]);
      ("telemetry", [ Alcotest.test_case "wire roundtrip" `Quick test_telemetry_roundtrip ]);
      ( "httpd",
        [
          Alcotest.test_case "request parsing" `Quick test_httpd_parse;
          Alcotest.test_case "scrape server" `Quick test_httpd_server;
        ] );
      ("fleet", [ Alcotest.test_case "absorb and stitch" `Quick test_fleet_stitching ]);
    ]
