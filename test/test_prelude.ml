(* Unit and property tests for the fmc_prelude substrate. *)

open Fmc_prelude

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Bitvec *)

let test_bitvec_basic () =
  let v = Bitvec.create 130 in
  Alcotest.(check int) "length" 130 (Bitvec.length v);
  Alcotest.(check bool) "fresh is zero" false (Bitvec.get v 0);
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 64 true;
  Bitvec.set v 129 true;
  Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
  Alcotest.(check bool) "bit 63" true (Bitvec.get v 63);
  Alcotest.(check bool) "bit 64" true (Bitvec.get v 64);
  Alcotest.(check bool) "bit 129" true (Bitvec.get v 129);
  Alcotest.(check bool) "bit 1" false (Bitvec.get v 1);
  Alcotest.(check int) "popcount" 4 (Bitvec.popcount v);
  Bitvec.set v 63 false;
  Alcotest.(check int) "popcount after clear" 3 (Bitvec.popcount v)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitvec.get: index 8 out of [0, 8)") (fun () ->
      ignore (Bitvec.get v 8));
  Alcotest.check_raises "negative length" (Invalid_argument "Bitvec.create: negative length") (fun () ->
      ignore (Bitvec.create (-1)))

let test_bitvec_string_roundtrip () =
  let s = "01001101" in
  let v = Bitvec.of_string s in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string v);
  Alcotest.(check bool) "bit0 is leftmost char" false (Bitvec.get v 0);
  Alcotest.(check bool) "bit1" true (Bitvec.get v 1)

let test_bitvec_logand () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  Alcotest.(check string) "and" "1000" (Bitvec.to_string (Bitvec.logand a b));
  Alcotest.check_raises "length mismatch" (Invalid_argument "Bitvec.logand: length mismatch") (fun () ->
      ignore (Bitvec.logand a (Bitvec.create 5)))

let test_bitvec_shift () =
  let v = Bitvec.of_string "0100110" in
  Alcotest.(check string) "towards zero by 1" "1001100" (Bitvec.to_string (Bitvec.shift_towards_zero v 1));
  Alcotest.(check string) "towards zero by 0" "0100110" (Bitvec.to_string (Bitvec.shift_towards_zero v 0));
  Alcotest.(check string) "away by 2" "0001001" (Bitvec.to_string (Bitvec.shift_away_from_zero v 2));
  (* Cross-word shift. *)
  let w = Bitvec.create 100 in
  Bitvec.set w 70 true;
  let shifted = Bitvec.shift_towards_zero w 65 in
  Alcotest.(check bool) "bit 5 after shift 65" true (Bitvec.get shifted 5);
  Alcotest.(check int) "popcount preserved" 1 (Bitvec.popcount shifted)

(* The worked example of paper §4 (Figure 3): correlations of g1, g2, g3
   with the responding signal rs. *)
let test_bitvec_paper_example () =
  let ss_rs = Bitvec.of_string "01001101" in
  let ss_g1 = Bitvec.of_string "00101101" in
  let ss_g2 = Bitvec.of_string "01100111" in
  let ss_g3 = Bitvec.of_string "01001111" in
  check_float "Corr0(g1, rs)" (3. /. 4.) (Bitvec.correlation ss_g1 ss_rs ~shift:0);
  check_float "Corr0(g2, rs)" (3. /. 5.) (Bitvec.correlation ss_g2 ss_rs ~shift:0);
  check_float "Corr1(g3, rs)" (2. /. 5.) (Bitvec.correlation ss_g3 ss_rs ~shift:1)

let test_bitvec_correlation_empty () =
  let zero = Bitvec.create 8 in
  let rs = Bitvec.of_string "11111111" in
  check_float "zero signature" 0. (Bitvec.correlation zero rs ~shift:0)

let test_bitvec_count_range () =
  let v = Bitvec.of_string "1011001" in
  Alcotest.(check int) "[0,7)" 4 (Bitvec.count_range v ~lo:0 ~hi:7);
  Alcotest.(check int) "[2,5)" 2 (Bitvec.count_range v ~lo:2 ~hi:5);
  Alcotest.(check int) "clamped" 4 (Bitvec.count_range v ~lo:(-3) ~hi:100)

let test_bitvec_iter_set () =
  let v = Bitvec.of_string "0101" in
  let acc = ref [] in
  Bitvec.iter_set v (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "indices ascending" [ 1; 3 ] (List.rev !acc)

let bitvec_props =
  let gen_bits = QCheck.(list_of_size Gen.(int_range 1 200) bool) in
  let to_vec bits =
    let v = Bitvec.create (List.length bits) in
    List.iteri (fun i b -> Bitvec.set v i b) bits;
    v
  in
  [
    QCheck.Test.make ~name:"popcount = number of true bits" ~count:200 gen_bits (fun bits ->
        Bitvec.popcount (to_vec bits) = List.length (List.filter Fun.id bits));
    QCheck.Test.make ~name:"shift towards then away keeps low bits zero" ~count:200
      QCheck.(pair gen_bits small_nat)
      (fun (bits, k) ->
        let v = to_vec bits in
        let k = k mod (Bitvec.length v + 1) in
        let round = Bitvec.shift_away_from_zero (Bitvec.shift_towards_zero v k) k in
        (* Bits below k must be zero; bits >= k must match v. *)
        let ok = ref true in
        for i = 0 to Bitvec.length v - 1 do
          let expect = if i < k then false else Bitvec.get v i in
          if Bitvec.get round i <> expect then ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:200 gen_bits (fun bits ->
        let s = String.concat "" (List.map (fun b -> if b then "1" else "0") bits) in
        Bitvec.to_string (Bitvec.of_string s) = s);
    QCheck.Test.make ~name:"correlation is within [0,1]" ~count:200
      QCheck.(triple gen_bits gen_bits (int_range 0 64))
      (fun (a, b, shift) ->
        let n = min (List.length a) (List.length b) in
        let take l = List.filteri (fun i _ -> i < n) l in
        let va = to_vec (take a) and vb = to_vec (take b) in
        let c = Bitvec.correlation va vb ~shift in
        c >= 0. && c <= 1.);
  ]

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_uniform () =
  let rng = Rng.create 11 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int n /. 8. in
      let dev = abs_float (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) (Printf.sprintf "bin %d within 5%%" i) true (dev < 0.05))
    counts

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_split_independence () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* The child must not replay the parent's stream. *)
  let parent2 = Rng.create 5 in
  let _ = Rng.split parent2 in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 child = Rng.int64 parent then incr matches
  done;
  Alcotest.(check bool) "split streams differ" true (!matches < 4)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_state_roundtrip () =
  let rng = Rng.create 13 in
  for _ = 1 to 37 do
    ignore (Rng.int64 rng)
  done;
  (* Snapshotting mid-stream and restoring must continue the exact draws. *)
  let restored = Rng.of_state (Rng.state rng) in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d after restore" i)
      (Rng.int64 rng) (Rng.int64 restored)
  done

let test_rng_choose () =
  let rng = Rng.create 1 in
  Alcotest.(check int) "singleton" 7 (Rng.choose rng [| 7 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_welford_known_values () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5.0 (Stats.Welford.mean w);
  check_float "variance (unbiased)" (32. /. 7.) (Stats.Welford.variance w);
  Alcotest.(check int) "count" 8 (Stats.Welford.count w)

let test_welford_empty_and_single () =
  let w = Stats.Welford.create () in
  check_float "empty mean" 0. (Stats.Welford.mean w);
  check_float "empty var" 0. (Stats.Welford.variance w);
  Stats.Welford.add w 3.5;
  check_float "single mean" 3.5 (Stats.Welford.mean w);
  check_float "single var" 0. (Stats.Welford.variance w)

let test_welford_merge () =
  let xs = [ 1.; 2.; 3.; 10.; 20.; 30.; -4. ] in
  let all = Stats.Welford.create () in
  List.iter (Stats.Welford.add all) xs;
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  List.iteri (fun i x -> Stats.Welford.add (if i < 3 then a else b) x) xs;
  let merged = Stats.Welford.merge a b in
  check_float "merged mean" (Stats.Welford.mean all) (Stats.Welford.mean merged);
  check_float "merged variance" (Stats.Welford.variance all) (Stats.Welford.variance merged);
  Alcotest.(check int) "merged count" 7 (Stats.Welford.count merged)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.; 3.; 9.9; -4.; 100. ];
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "first bin gets clamped low" 3 counts.(0);
  Alcotest.(check int) "last bin gets clamped high" 2 counts.(4);
  Alcotest.(check int) "bin 1" 1 counts.(1);
  check_float "probability sums to one" 1.0 (Array.fold_left ( +. ) 0. (Stats.Histogram.probabilities h));
  check_float "bin center" 1.0 (Stats.Histogram.bin_center h 0)

let test_histogram_invalid () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Stats.Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "range" (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~bins:4))

let test_array_stats () =
  check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check_float "variance" (5. /. 3.) (Stats.variance [| 1.; 2.; 3.; 4. |]);
  check_float "empty mean" 0. (Stats.mean [||]);
  check_float "singleton variance" 0. (Stats.variance [| 42. |])

let welford_props =
  [
    QCheck.Test.make ~name:"welford matches direct computation" ~count:200
      QCheck.(list_of_size Gen.(int_range 2 100) (float_range (-100.) 100.))
      (fun xs ->
        let w = Stats.Welford.create () in
        List.iter (Stats.Welford.add w) xs;
        let a = Array.of_list xs in
        abs_float (Stats.Welford.mean w -. Stats.mean a) < 1e-6
        && abs_float (Stats.Welford.variance w -. Stats.variance a) < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Wdist *)

let test_wdist_pmf () =
  let d = Wdist.create [| 1.; 3.; 0.; 4. |] in
  check_float "pmf 0" 0.125 (Wdist.pmf d 0);
  check_float "pmf 1" 0.375 (Wdist.pmf d 1);
  check_float "pmf 2" 0. (Wdist.pmf d 2);
  check_float "pmf 3" 0.5 (Wdist.pmf d 3);
  Alcotest.(check (list int)) "support" [ 0; 1; 3 ] (Wdist.support d);
  Alcotest.(check int) "length" 4 (Wdist.length d)

let test_wdist_invalid () =
  let inv msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  inv "Wdist.create: empty weight array" (fun () -> ignore (Wdist.create [||]));
  inv "Wdist.create: all weights are zero" (fun () -> ignore (Wdist.create [| 0.; 0. |]));
  inv "Wdist.create: weights must be finite and non-negative" (fun () ->
      ignore (Wdist.create [| 1.; -2. |]))

let test_wdist_sampling_frequencies () =
  let d = Wdist.create [| 1.; 0.; 2.; 1. |] in
  let rng = Rng.create 123 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Wdist.sample d rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight index never drawn" 0 counts.(1);
  let freq i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "freq 0 ~ 0.25" true (abs_float (freq 0 -. 0.25) < 0.02);
  Alcotest.(check bool) "freq 2 ~ 0.5" true (abs_float (freq 2 -. 0.5) < 0.02);
  Alcotest.(check bool) "freq 3 ~ 0.25" true (abs_float (freq 3 -. 0.25) < 0.02)

let wdist_props =
  [
    QCheck.Test.make ~name:"samples always in support" ~count:100
      QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0. 10.))
      (fun ws ->
        let ws = Array.of_list ws in
        QCheck.assume (Array.exists (fun w -> w > 0.) ws);
        let d = Wdist.create ws in
        let rng = Rng.create 77 in
        let support = Wdist.support d in
        let ok = ref true in
        for _ = 1 to 200 do
          if not (List.mem (Wdist.sample d rng) support) then ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"pmf sums to one" ~count:100
      QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0. 10.))
      (fun ws ->
        let ws = Array.of_list ws in
        QCheck.assume (Array.exists (fun w -> w > 0.) ws);
        let d = Wdist.create ws in
        let sum = ref 0. in
        for i = 0 to Wdist.length d - 1 do
          sum := !sum +. Wdist.pmf d i
        done;
        abs_float (!sum -. 1.) < 1e-9);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "prelude"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basic set/get/popcount" `Quick test_bitvec_basic;
          Alcotest.test_case "bounds checking" `Quick test_bitvec_bounds;
          Alcotest.test_case "string roundtrip" `Quick test_bitvec_string_roundtrip;
          Alcotest.test_case "logand" `Quick test_bitvec_logand;
          Alcotest.test_case "shifts" `Quick test_bitvec_shift;
          Alcotest.test_case "paper figure 3 correlations" `Quick test_bitvec_paper_example;
          Alcotest.test_case "correlation of empty signature" `Quick test_bitvec_correlation_empty;
          Alcotest.test_case "count_range" `Quick test_bitvec_count_range;
          Alcotest.test_case "iter_set" `Quick test_bitvec_iter_set;
        ] );
      ("bitvec-props", q bitvec_props);
      ( "rng",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int ranges" `Quick test_rng_int_range;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniform;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "state snapshot/restore" `Quick test_rng_state_roundtrip;
          Alcotest.test_case "choose" `Quick test_rng_choose;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford known values" `Quick test_welford_known_values;
          Alcotest.test_case "welford empty/single" `Quick test_welford_empty_and_single;
          Alcotest.test_case "welford merge" `Quick test_welford_merge;
          Alcotest.test_case "histogram binning" `Quick test_histogram;
          Alcotest.test_case "histogram invalid args" `Quick test_histogram_invalid;
          Alcotest.test_case "array mean/variance" `Quick test_array_stats;
        ] );
      ("stats-props", q welford_props);
      ( "wdist",
        [
          Alcotest.test_case "pmf and support" `Quick test_wdist_pmf;
          Alcotest.test_case "invalid inputs" `Quick test_wdist_invalid;
          Alcotest.test_case "sampling frequencies" `Slow test_wdist_sampling_frequencies;
        ] );
      ("wdist-props", q wdist_props);
    ]
