(* Tests for the multi-campaign scheduler: WAL framing and torn-tail
   replay, admission control and cancellation, report caching, kill -9
   recovery (WAL + per-campaign checkpoints) with bit-identical merged
   reports, and a loopback service driving a shared pool worker over a
   Unix socket through submit / fetch / cached resubmit / drain. *)

module Programs = Fmc_isa.Programs
module Wal = Fmc_sched.Wal
module Sched = Fmc_sched.Sched
module Service = Fmc_sched.Service
open Fmc
open Fmc_dist

let ctx = lazy (Experiments.context ())
let engine () = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write

let prepare strategy =
  let e = engine () in
  Sampler.prepare ~static_vuln:(Engine.static_vulnerable e) strategy
    (Experiments.default_attack (Lazy.force ctx))
    (Experiments.precharac (Lazy.force ctx))
    ~placement:(Engine.placement e)

let temp_dir () =
  let path = Filename.temp_file "fmc-sched" ".dir" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let spec ?(samples = 40) ?(seed = 7) ?(shard_size = 20) ?(model = "disc-transient") () =
  {
    Protocol.sp_benchmark = "illegal-write";
    sp_strategy = "mixed";
    sp_samples = samples;
    sp_seed = seed;
    sp_shard_size = shard_size;
    sp_sample_budget = None;
    sp_fault_model = model;
  }

let metric reg name =
  match Fmc_obs.Metrics.find (Fmc_obs.Metrics.snapshot reg) name with
  | Some (Fmc_obs.Metrics.Counter v) -> v
  | Some (Fmc_obs.Metrics.Gauge v) -> v
  | _ -> Alcotest.failf "missing metric %s" name

(* Run one leased job on the local engine and feed the result back. *)
let run_job ?(worker = "pump") sched ~now e prep (sp : Protocol.spec) (a : Lease.assignment) =
  let sh =
    Campaign.run_shard e prep ~seed:sp.Protocol.sp_seed ~shard:a.Lease.shard ~start:a.Lease.start
      ~len:a.Lease.len
  in
  match
    Sched.complete sched ~now
      ~fingerprint:(Protocol.spec_fingerprint sp)
      ~shard:a.Lease.shard ~epoch:a.Lease.epoch ~worker ~digest:None
      ~tally:(Ssf.Tally.to_string sh.Campaign.sh_snapshot)
      ~quarantined:sh.Campaign.sh_quarantined
  with
  | `Accepted | `Audited _ -> ()
  | `Duplicate | `Stale | `Unknown | `Invalid _ | `Mismatch ->
      Alcotest.fail "completion not accepted"

(* Pump [scope] until it has nothing leasable; returns jobs served. *)
let pump sched ~now e prep ~scope =
  let served = ref 0 in
  let rec go () =
    match Sched.next_job sched ~now ~worker:"pump" ~scope with
    | `Job (sp, a) ->
        incr served;
        if !served > 100 then Alcotest.fail "pump runaway";
        run_job sched ~now e prep sp a;
        go ()
    | `Wait | `Drained -> ()
    | `Banned -> Alcotest.fail "pump: banned"
    | `Unknown_scope -> Alcotest.fail "pump: unknown scope"
  in
  go ();
  !served

let merged_json strategy blobs =
  match Merge.report_of_blobs ~strategy blobs with
  | Ok r -> Export.report_json r
  | Error msg -> Alcotest.failf "merge failed: %s" msg

let reference_json e prep (sp : Protocol.spec) =
  let result =
    Campaign.estimate_sharded e prep ~samples:sp.Protocol.sp_samples ~seed:sp.Protocol.sp_seed
      ~shard_size:sp.Protocol.sp_shard_size
  in
  Export.report_json result.Campaign.report

(* ------------------------------------------------------------------ *)
(* WAL *)

let test_wal_roundtrip () =
  with_dir @@ fun dir ->
  let empty = Wal.replay ~dir in
  Alcotest.(check (list string)) "empty" [] empty.Wal.records;
  let w = Wal.start ~dir ~initial:[ "alpha"; "beta" ] in
  Wal.append w "gamma";
  Wal.append w (String.make 5000 'x');
  Wal.close w;
  let r = Wal.replay ~dir in
  Alcotest.(check (list string))
    "records in order"
    [ "alpha"; "beta"; "gamma"; String.make 5000 'x' ]
    r.Wal.records;
  Alcotest.(check int) "no tears" 0 r.Wal.torn;
  (* Compaction rewrites the state into a single fresh segment. *)
  let w2 = Wal.start ~dir ~initial:r.Wal.records in
  Wal.close w2;
  let r2 = Wal.replay ~dir in
  Alcotest.(check (list string)) "post-compaction" r.Wal.records r2.Wal.records;
  Alcotest.(check int) "one segment" 1 r2.Wal.segments

let wal_segment dir =
  match Array.to_list (Sys.readdir dir) |> List.filter (fun n -> Filename.check_suffix n ".wal")
  with
  | [ seg ] -> Filename.concat dir seg
  | l -> Alcotest.failf "expected one segment, found %d" (List.length l)

let test_wal_torn_tail () =
  with_dir @@ fun dir ->
  let w = Wal.start ~dir ~initial:[] in
  Wal.append w "first";
  Wal.append w "second";
  Wal.append w "third";
  Wal.close w;
  (* Tear the tail the way a crash mid-append would: the final record
     loses its last bytes. *)
  let seg = wal_segment dir in
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (size - 2);
  Unix.close fd;
  let r = Wal.replay ~dir in
  Alcotest.(check (list string)) "intact prefix" [ "first"; "second" ] r.Wal.records;
  Alcotest.(check int) "tear counted" 1 r.Wal.torn

let test_wal_mid_corruption_stops_replay () =
  with_dir @@ fun dir ->
  let w = Wal.start ~dir ~initial:[] in
  Wal.append w "aaaaaaaa";
  Wal.append w "bbbbbbbb";
  Wal.append w "cccccccc";
  Wal.close w;
  (* Flip a payload byte of the middle record: its CRC no longer checks
     out, and nothing after it may be applied either. *)
  let seg = wal_segment dir in
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
  let middle_payload = 8 + 8 + 8 + 2 (* rec1 header+payload, rec2 header, 2 in *) in
  ignore (Unix.lseek fd middle_payload Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  let r = Wal.replay ~dir in
  Alcotest.(check (list string)) "only the prefix survives" [ "aaaaaaaa" ] r.Wal.records;
  Alcotest.(check int) "tear counted" 1 r.Wal.torn

(* ------------------------------------------------------------------ *)
(* Scheduler state machine *)

let test_admission_cancel_cache () =
  with_dir @@ fun dir ->
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let now = 1000. in
  let config = { Sched.default_config with queue_depth = 2 } in
  let sched = Sched.create config ~dir ~now in
  let s1 = spec ~seed:5 () and s2 = spec ~seed:9 () and s3 = spec ~seed:13 () in
  (match Sched.submit sched ~now s1 with
  | `Queued 0 -> ()
  | _ -> Alcotest.fail "first submission should queue at 0");
  (match Sched.submit sched ~now s2 with
  | `Queued 1 -> ()
  | _ -> Alcotest.fail "second submission should queue at 1");
  (* Queue full: typed shed with the configured retry hint. *)
  (match Sched.submit sched ~now s3 with
  | `Rejected retry -> Alcotest.(check (float 0.)) "retry hint" 5. retry
  | _ -> Alcotest.fail "over-depth submission must be rejected");
  (* Resubmitting a queued spec is idempotent, not a new slot. *)
  (match Sched.submit sched ~now s1 with
  | `Queued 0 -> ()
  | _ -> Alcotest.fail "duplicate submission should report its position");
  (match Sched.submit sched ~now { s1 with Protocol.sp_samples = 0 } with
  | `Invalid _ -> ()
  | _ -> Alcotest.fail "non-positive samples must be invalid");
  (* Cancelling frees the admission slot. *)
  (match Sched.cancel sched ~fingerprint:(Protocol.spec_fingerprint s2) with
  | `Cancelled -> ()
  | _ -> Alcotest.fail "cancel of a queued campaign");
  (match Sched.cancel sched ~fingerprint:"no-such" with
  | `Unknown -> ()
  | _ -> Alcotest.fail "cancel of an unknown fingerprint");
  (match Sched.submit sched ~now s3 with
  | `Queued _ -> ()
  | _ -> Alcotest.fail "cancellation must free the queue slot");
  (* Finish s1 via its own scope; its report lands in the cache. *)
  let fp1 = Protocol.spec_fingerprint s1 in
  let served = pump sched ~now e prep ~scope:fp1 in
  Alcotest.(check int) "s1 shard count" 2 served;
  (match Sched.report sched ~fingerprint:fp1 with
  | Some (blobs, quarantined, _) ->
      Alcotest.(check int) "blobs" 2 (List.length blobs);
      Alcotest.(check int) "quarantined" 0 (List.length quarantined);
      Alcotest.(check string) "bit-identical to the sharded reference" (reference_json e prep s1)
        (merged_json "mixed" blobs)
  | None -> Alcotest.fail "finished campaign must have a report");
  (match Sched.submit sched ~now s1 with
  | `Cached -> ()
  | _ -> Alcotest.fail "resubmission of a finished campaign must hit the cache");
  (match Sched.cancel sched ~fingerprint:fp1 with
  | `Already_finished -> ()
  | _ -> Alcotest.fail "finished campaigns cannot be cancelled");
  (* Status: submission order, with progress on the finished entry. *)
  let entries = Sched.status sched ~now ~fingerprint:"" in
  Alcotest.(check int) "three entries (cancelled s2 included)" 3 (List.length entries);
  let st1 = List.find (fun e -> e.Protocol.st_fingerprint = fp1) entries in
  Alcotest.(check bool) "s1 finished" true (st1.Protocol.st_state = Protocol.Finished);
  Alcotest.(check int) "s1 samples done" 40 st1.Protocol.st_samples_done;
  Sched.shutdown sched

let test_drain_stops_leasing () =
  with_dir @@ fun dir ->
  let now = 50. in
  let sched = Sched.create Sched.default_config ~dir ~now in
  (match Sched.submit sched ~now (spec ()) with `Queued 0 -> () | _ -> Alcotest.fail "queue");
  Sched.drain sched;
  Alcotest.(check bool) "draining" true (Sched.draining sched);
  (match Sched.next_job sched ~now ~worker:"w" ~scope:Protocol.pool_fingerprint with
  | `Drained -> ()
  | _ -> Alcotest.fail "a draining scheduler must not lease");
  Alcotest.(check int) "nothing in flight" 0 (Sched.in_flight sched);
  Sched.shutdown sched

(* ------------------------------------------------------------------ *)
(* kill -9 recovery *)

let test_kill9_recovery_bit_identical () =
  with_dir @@ fun dir ->
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let now = 100. in
  let s1 = spec ~samples:60 ~seed:5 () in
  let s2 = spec ~samples:60 ~seed:9 () in
  let s3 = spec ~samples:40 ~seed:13 () in
  let fp1 = Protocol.spec_fingerprint s1
  and fp2 = Protocol.spec_fingerprint s2
  and fp3 = Protocol.spec_fingerprint s3 in
  (* First incarnation: three campaigns; finish s1, run one shard of s2,
     leave s3 untouched — then "crash" (no shutdown, no compaction). *)
  let sched1 = Sched.create Sched.default_config ~dir ~now in
  List.iter
    (fun s ->
      match Sched.submit sched1 ~now s with
      | `Queued _ -> ()
      | _ -> Alcotest.fail "submit")
    [ s1; s2; s3 ];
  Alcotest.(check int) "s1 runs fully" 3 (pump sched1 ~now e prep ~scope:fp1);
  (match Sched.next_job sched1 ~now ~worker:"w" ~scope:fp2 with
  | `Job (sp, a) -> run_job sched1 ~now e prep sp a
  | _ -> Alcotest.fail "lease one s2 shard");
  (* sched1 is abandoned here, WAL handle and all, like a SIGKILL. *)
  let reg = Fmc_obs.Metrics.create () in
  let obs = Fmc_obs.Obs.create ~metrics:reg () in
  let sched2 = Sched.create ~obs Sched.default_config ~dir ~now:(now +. 10.) in
  Alcotest.(check (float 0.)) "recoveries counted" 3. (metric reg "fmc_sched_recoveries_total");
  let now = now +. 20. in
  let state fp =
    match Sched.status sched2 ~now ~fingerprint:fp with
    | [ e ] -> (e.Protocol.st_state, e.Protocol.st_samples_done)
    | _ -> Alcotest.failf "no status for %s" fp
  in
  Alcotest.(check bool) "s1 recovered finished" true (state fp1 = (Protocol.Finished, 60));
  let st2, done2 = state fp2 in
  Alcotest.(check bool) "s2 recovered unfinished" true
    (st2 = Protocol.Queued || st2 = Protocol.Running);
  Alcotest.(check int) "s2 keeps its checkpointed shard" 20 done2;
  Alcotest.(check bool) "s3 recovered queued" true (fst (state fp3) = Protocol.Queued);
  (* Finishing everything takes exactly the shards that were missing:
     two more for s2, two for s3 — recovered work is never re-run. *)
  let served = pump sched2 ~now e prep ~scope:Protocol.pool_fingerprint in
  Alcotest.(check int) "only missing shards re-run" 4 served;
  List.iter
    (fun (fp, s) ->
      match Sched.report sched2 ~fingerprint:fp with
      | Some (blobs, _, _) ->
          Alcotest.(check string)
            ("bit-identical after recovery: " ^ fp)
            (reference_json e prep s) (merged_json "mixed" blobs)
      | None -> Alcotest.failf "campaign %s must be finished" fp)
    [ (fp1, s1); (fp2, s2); (fp3, s3) ];
  Sched.shutdown sched2;
  (* A third incarnation after a clean shutdown: everything is cached. *)
  let sched3 = Sched.create Sched.default_config ~dir ~now in
  (match Sched.submit sched3 ~now s2 with
  | `Cached -> ()
  | _ -> Alcotest.fail "finished campaigns survive a clean restart");
  Sched.shutdown sched3

(* kill -9 with audits in flight: both shards are done but unaudited;
   the recovered scheduler must withhold the report, re-offer the audit
   obligations to a different worker, and serve a bit-identical report
   only once they pass. Also exercises the digest gate: a carried digest
   that disagrees with the payload is a typed [`Mismatch] refusal. *)
let test_kill9_mid_audit_preserves_obligations () =
  with_dir @@ fun dir ->
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let now = 100. in
  let config = { Sched.default_config with Sched.audit_rate = 1.0 } in
  let s = spec ~samples:40 ~seed:5 () in
  let fp = Protocol.spec_fingerprint s in
  let honest ~tally ~quarantined =
    Some (Fmc_audit.Audit.Check.result_digest ~tally ~quarantined)
  in
  let run_one sched ~worker ~digest_of =
    match Sched.next_job sched ~now ~worker ~scope:fp with
    | `Job (sp, a) ->
        let sh =
          Campaign.run_shard e prep ~seed:sp.Protocol.sp_seed ~shard:a.Lease.shard
            ~start:a.Lease.start ~len:a.Lease.len
        in
        let tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot in
        let quarantined = sh.Campaign.sh_quarantined in
        Sched.complete sched ~now ~fingerprint:fp ~shard:a.Lease.shard ~epoch:a.Lease.epoch
          ~worker
          ~digest:(digest_of ~tally ~quarantined)
          ~tally ~quarantined
    | `Wait | `Drained | `Banned | `Unknown_scope -> Alcotest.fail "expected a job"
  in
  let sched1 = Sched.create config ~dir ~now in
  (match Sched.submit sched1 ~now s with `Queued 0 -> () | _ -> Alcotest.fail "submit");
  (match run_one sched1 ~worker:"alice" ~digest_of:(fun ~tally:_ ~quarantined:_ -> Some "bogus")
   with
  | `Mismatch -> ()
  | _ -> Alcotest.fail "a lying digest must be refused as a mismatch");
  (match run_one sched1 ~worker:"alice" ~digest_of:honest with
  | `Accepted -> ()
  | _ -> Alcotest.fail "honest first shard accepted");
  (match run_one sched1 ~worker:"alice" ~digest_of:honest with
  | `Accepted -> ()
  | _ -> Alcotest.fail "honest second shard accepted");
  Alcotest.(check bool) "report withheld while audits are pending" true
    (Sched.report sched1 ~fingerprint:fp = None);
  (* sched1 is abandoned here — WAL handle, audit leases and all. *)
  let sched2 = Sched.create config ~dir ~now in
  Alcotest.(check bool) "audit obligations survive kill -9" true
    (Sched.report sched2 ~fingerprint:fp = None);
  (* A different worker drains the re-offered audits; once both pass
     the campaign finalizes and the scope answers [`Drained]. *)
  let audited = ref 0 in
  let rec drain () =
    if !audited > 4 then Alcotest.fail "audit runaway";
    match Sched.next_job sched2 ~now ~worker:"bob" ~scope:fp with
    | `Job (sp, a) -> (
        let sh =
          Campaign.run_shard e prep ~seed:sp.Protocol.sp_seed ~shard:a.Lease.shard
            ~start:a.Lease.start ~len:a.Lease.len
        in
        let tally = Ssf.Tally.to_string sh.Campaign.sh_snapshot in
        let quarantined = sh.Campaign.sh_quarantined in
        match
          Sched.complete sched2 ~now ~fingerprint:fp ~shard:a.Lease.shard ~epoch:a.Lease.epoch
            ~worker:"bob"
            ~digest:(honest ~tally ~quarantined)
            ~tally ~quarantined
        with
        | `Audited _ ->
            incr audited;
            drain ()
        | _ -> Alcotest.fail "re-execution must land as an audit")
    | `Drained -> ()
    | `Wait | `Banned | `Unknown_scope -> Alcotest.fail "audits must be offered until drained"
  in
  drain ();
  Alcotest.(check int) "both audits re-ran" 2 !audited;
  (match Sched.report sched2 ~fingerprint:fp with
  | Some (blobs, _, _) ->
      Alcotest.(check string) "audited report is bit-identical" (reference_json e prep s)
        (merged_json "mixed" blobs)
  | None -> Alcotest.fail "audited campaign must serve its report");
  Sched.shutdown sched2

let test_torn_submit_record_dropped () =
  with_dir @@ fun dir ->
  let now = 10. in
  let s1 = spec ~seed:5 () and s2 = spec ~seed:9 () in
  let sched1 = Sched.create Sched.default_config ~dir ~now in
  (match Sched.submit sched1 ~now s1 with `Queued 0 -> () | _ -> Alcotest.fail "submit s1");
  (match Sched.submit sched1 ~now s2 with `Queued 1 -> () | _ -> Alcotest.fail "submit s2");
  (* Tear the tail of the live WAL: the s2 submit record is the victim,
     as if the crash hit mid-append. *)
  let seg = wal_segment (Filename.concat dir "wal") in
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (size - 3);
  Unix.close fd;
  let reg = Fmc_obs.Metrics.create () in
  let obs = Fmc_obs.Obs.create ~metrics:reg () in
  let sched2 = Sched.create ~obs Sched.default_config ~dir ~now in
  Alcotest.(check (float 0.)) "torn record counted" 1.
    (metric reg "fmc_sched_wal_torn_records_total");
  Alcotest.(check int) "only the intact submission survives" 1
    (List.length (Sched.status sched2 ~now ~fingerprint:""));
  (match Sched.status sched2 ~now ~fingerprint:(Protocol.spec_fingerprint s1) with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "s1 must survive the tear");
  (* The torn submission was never acknowledged as durable state — the
     client simply submits again. *)
  (match Sched.submit sched2 ~now s2 with
  | `Queued _ -> ()
  | _ -> Alcotest.fail "the torn campaign resubmits cleanly");
  Sched.shutdown sched2

(* ------------------------------------------------------------------ *)
(* Loopback service + shared pool worker *)

let test_service_loopback_pool () =
  let e = engine () in
  let prep = prepare Sampler.default_mixed in
  let sock_path = Filename.temp_file "fmc-sched" ".sock" in
  Sys.remove sock_path;
  with_dir @@ fun dir ->
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists sock_path then Sys.remove sock_path)
    (fun () ->
      let addr = Wire.Unix_path sock_path in
      let config =
        {
          (Service.default_config ~addr ~state_dir:dir) with
          Service.handle_signals = false;
          sched = { Sched.default_config with Sched.ttl_s = 5. };
        }
      in
      let reg = Fmc_obs.Metrics.create () in
      let obs = Fmc_obs.Obs.create ~metrics:reg () in
      let control = ref None in
      let outcome = ref None in
      let server =
        Thread.create
          (fun () ->
            outcome := Some (Service.serve ~obs ~on_ready:(fun c -> control := Some c) config))
          ()
      in
      let s1 = spec ~samples:60 ~seed:5 () in
      let fp1 = Protocol.spec_fingerprint s1 in
      let client = Worker.default_config ~addr ~worker_name:"ctl" in
      (* Submit over the wire before any worker exists. *)
      (match Worker.submit client s1 with
      | Ok (Worker.Submit_queued 0) -> ()
      | Ok _ -> Alcotest.fail "expected queued at 0"
      | Error msg -> Alcotest.failf "submit failed: %s" msg);
      (* A shared pool worker drains the queue; it keeps serving until
         the scheduler itself drains. *)
      let accepted = ref 0 in
      let pool =
        Thread.create
          (fun () ->
            let wcfg =
              { (Worker.default_config ~addr ~worker_name:"pool-1") with Worker.retry_delay_s = 0.05 }
            in
            accepted := Worker.run_pool wcfg ~resolve:(fun _ -> Ok (e, prep, None)) ())
          ()
      in
      (* Wait for the report on a campaign-scoped connection; pending
         replies carry the queue entry. *)
      let saw_pending = ref false in
      (match
         Worker.fetch_report ~poll_s:0.05 ~timeout_s:60.
           ~on_pending:(fun _ -> saw_pending := true)
           client ~fingerprint:fp1
       with
      | Error err -> Alcotest.failf "fetch failed: %s" (Worker.fetch_error_message err)
      | Ok (blobs, quarantined, _) ->
          Alcotest.(check int) "quarantined" 0 (List.length quarantined);
          Alcotest.(check string) "wire report bit-identical" (reference_json e prep s1)
            (merged_json "mixed" blobs));
      (* Resubmission of the finished campaign hits the cache. *)
      (match Worker.submit client s1 with
      | Ok Worker.Submit_cached -> ()
      | Ok _ -> Alcotest.fail "resubmission must be cached"
      | Error msg -> Alcotest.failf "resubmit failed: %s" msg);
      (match Worker.sched_status client ~fingerprint:"" with
      | Ok [ st ] ->
          Alcotest.(check bool) "finished over the wire" true
            (st.Protocol.st_state = Protocol.Finished)
      | Ok l -> Alcotest.failf "expected one status entry, got %d" (List.length l)
      | Error msg -> Alcotest.failf "status failed: %s" msg);
      (* Drain: leasing stops, the pool worker is told to exit, the
         service returns. *)
      (match !control with Some c -> c.Service.request_drain () | None -> Alcotest.fail "ready");
      Thread.join pool;
      Alcotest.(check bool) "pool worker completed shards" true (!accepted >= 1);
      Thread.join server;
      (match !outcome with
      | Some { Service.sv_reason = Service.Drained } -> ()
      | Some _ -> Alcotest.fail "expected a drained exit"
      | None -> Alcotest.fail "no outcome");
      ignore !saw_pending)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fmc_sched"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip and compaction" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "mid-segment corruption stops replay" `Quick
            test_wal_mid_corruption_stops_replay;
        ] );
      ( "sched",
        [
          Alcotest.test_case "admission, cancel, cache" `Slow test_admission_cancel_cache;
          Alcotest.test_case "drain stops leasing" `Quick test_drain_stops_leasing;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "kill -9 recovery is bit-identical" `Slow
            test_kill9_recovery_bit_identical;
          Alcotest.test_case "kill -9 mid-audit preserves obligations" `Slow
            test_kill9_mid_audit_preserves_obligations;
          Alcotest.test_case "torn submit record dropped" `Quick test_torn_submit_record_dropped;
        ] );
      ( "service",
        [ Alcotest.test_case "loopback pool campaign" `Slow test_service_loopback_pool ] );
    ]
