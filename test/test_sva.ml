(* Tests for the Fmc_sva masking-certificate library: three-valued
   abstract interpretation soundness against the concrete simulator
   (property tests over random netlists), sequential constant
   propagation against multi-cycle replay, cycle-aware observability
   distances on a hand-built register chain, the pruner's self-check
   (every claimed-masked point confirmed by a full engine run), and the
   headline acceptance property — a pruned Monte Carlo run produces a
   report byte-identical to the unpruned reference on both bundled
   benchmarks. *)

module K = Fmc_netlist.Kind
module B = Fmc_netlist.Builder
module N = Fmc_netlist.Netlist
module Rng = Fmc_prelude.Rng
module Cycle_sim = Fmc_gatesim.Cycle_sim
module Absint = Fmc_sva.Absint
module Seqconst = Fmc_sva.Seqconst
module Window = Fmc_sva.Window
module Cert = Fmc_sva.Cert
module Pruner = Fmc_sva.Pruner
module Programs = Fmc_isa.Programs
open Fmc

(* ------------------------------------------------------------------ *)
(* Random netlists (same shape as the generator in test_netlist.ml) *)

let random_netlist rng ~num_inputs ~num_regs ~num_gates =
  let b = B.create () in
  let nodes = ref [] in
  for i = 0 to num_inputs - 1 do
    nodes := B.add_input b ~name:(Printf.sprintf "i%d" i) :: !nodes
  done;
  let regs =
    Array.init num_regs (fun i -> B.add_dff b ~group:(Printf.sprintf "r%d" i) ~bit:0 ~init:false)
  in
  Array.iter (fun r -> nodes := r :: !nodes) regs;
  for _ = 1 to num_gates do
    let pool = Array.of_list !nodes in
    let pick () = Rng.choose rng pool in
    let kind = Rng.choose rng [| K.And; K.Or; K.Xor; K.Nand; K.Nor; K.Not; K.Mux |] in
    let fanins =
      match K.gate_arity kind with
      | Some n -> Array.init n (fun _ -> pick ())
      | None -> Array.init (2 + Rng.int rng 2) (fun _ -> pick ())
    in
    nodes := B.add_gate b kind fanins :: !nodes
  done;
  let pool = Array.of_list !nodes in
  Array.iter (fun r -> B.connect_dff b r ~d:(Rng.choose rng pool)) regs;
  B.set_output b ~name:"o" pool.(0);
  N.of_builder b

(* ------------------------------------------------------------------ *)
(* Property: the abstract comb pass never contradicts the concrete
   simulator when its seed agrees with the concrete state. *)

let absint_props =
  [
    QCheck.Test.make ~name:"comb_pass never refutes the concrete evaluation" ~count:100
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Rng.create seed in
        let net = random_netlist rng ~num_inputs:4 ~num_regs:4 ~num_gates:40 in
        let sim = Cycle_sim.create net in
        let values = Array.make (N.num_nodes net) None in
        (* Concrete state is random; each seed entry is either the exact
           concrete value or unknown — soundness must hold for any such
           weakening. *)
        Array.iter
          (fun i ->
            let v = Rng.bool rng in
            Cycle_sim.set_input sim i v;
            values.(i) <- (if Rng.bool rng then Some v else None))
          (N.inputs net);
        Array.iter
          (fun f ->
            let v = Rng.bool rng in
            if v then Cycle_sim.flip sim f;
            values.(f) <- (if Rng.bool rng then Some v else None))
          (N.dffs net);
        Cycle_sim.eval_comb sim;
        Absint.comb_pass net values;
        Array.for_all
          (fun g -> not (Absint.refutes values.(g) (Cycle_sim.value sim g)))
          (N.gates net));
    QCheck.Test.make ~name:"fully-definite seed reproduces the simulator exactly" ~count:50
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Rng.create seed in
        let net = random_netlist rng ~num_inputs:3 ~num_regs:3 ~num_gates:30 in
        let sim = Cycle_sim.create net in
        let values = Array.make (N.num_nodes net) None in
        Array.iter
          (fun i ->
            let v = Rng.bool rng in
            Cycle_sim.set_input sim i v;
            values.(i) <- Some v)
          (N.inputs net);
        Array.iter (fun f -> values.(f) <- Some false) (N.dffs net);
        Cycle_sim.eval_comb sim;
        Absint.comb_pass net values;
        (* With no unknowns in the seed, the abstract pass has no excuse
           to lose information: every gate must be definite and equal. *)
        Array.for_all (fun g -> values.(g) = Some (Cycle_sim.value sim g)) (N.gates net));
    QCheck.Test.make ~name:"sequential constants hold on every concrete cycle" ~count:50
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Rng.create seed in
        let net = random_netlist rng ~num_inputs:4 ~num_regs:5 ~num_gates:40 in
        let r = Seqconst.analyze net in
        let sim = Cycle_sim.create net in
        let ok = ref true in
        let check n =
          match Seqconst.constant r n with
          | Some v -> if Cycle_sim.value sim n <> v then ok := false
          | None -> ()
        in
        for _cycle = 1 to 8 do
          Array.iter (fun i -> Cycle_sim.set_input sim i (Rng.bool rng)) (N.inputs net);
          Cycle_sim.eval_comb sim;
          Array.iter check (N.dffs net);
          Array.iter check (N.gates net);
          Cycle_sim.latch sim
        done;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Observability distances on a hand-built chain *)

(* c -> b -> a -> root gate; iso is connected but feeds nothing the root
   can see. *)
let chain_net () =
  let b = B.create () in
  let i = B.add_input b ~name:"i" in
  let a = B.add_dff b ~group:"a" ~bit:0 ~init:false in
  let bb = B.add_dff b ~group:"b" ~bit:0 ~init:false in
  let c = B.add_dff b ~group:"c" ~bit:0 ~init:false in
  let iso = B.add_dff b ~group:"iso" ~bit:0 ~init:false in
  B.connect_dff b c ~d:i;
  B.connect_dff b bb ~d:c;
  B.connect_dff b a ~d:bb;
  B.connect_dff b iso ~d:i;
  let root = B.add_gate b K.Buf [| a |] in
  B.set_output b ~name:"o" root;
  (N.of_builder b, root, a, bb, c, iso)

let test_window_distances () =
  let net, root, a, b, c, iso = chain_net () in
  let w = Window.distances net ~roots:[ root ] in
  Alcotest.(check (option int)) "a feeds the root cone" (Some 0) (Window.distance w a);
  Alcotest.(check (option int)) "b is one latch away" (Some 1) (Window.distance w b);
  Alcotest.(check (option int)) "c is two latches away" (Some 2) (Window.distance w c);
  Alcotest.(check (option int)) "iso never reaches the root" None (Window.distance w iso);
  Alcotest.(check (option int)) "group minimum" (Some 1) (Window.group_distance w [| b; c |]);
  Alcotest.(check (option int)) "deadline bound" (Some 8)
    (Window.observable_until w ~halt:10 [| c |]);
  Alcotest.(check (option int)) "unreachable group has no deadline" None
    (Window.observable_until w ~halt:10 [| iso |])

(* ------------------------------------------------------------------ *)
(* Benchmarks: certificates, self-check, byte-identical pruned reports *)

let ctx = lazy (Experiments.context ())

let prepare e =
  Sampler.prepare ~static_vuln:(Engine.static_vulnerable e) Sampler.default_mixed
    (Experiments.default_attack (Lazy.force ctx))
    (Experiments.precharac (Lazy.force ctx))
    ~placement:(Engine.placement e)

let test_certificate_artifact () =
  let e = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write in
  let cert = Cert.build e in
  Alcotest.(check bool) "benchmark named" true (String.length cert.Cert.benchmark > 0);
  Alcotest.(check bool) "registers counted" true (cert.Cert.dff_count > 0);
  Alcotest.(check bool) "per-group certificates" true (cert.Cert.groups <> []);
  Alcotest.(check bool) "workload replay ran" true (cert.Cert.workload_cycles > 0);
  Alcotest.(check bool) "constant inputs bounded" true
    (cert.Cert.constant_input_bits <= cert.Cert.input_bits);
  let json = Cert.to_json cert in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tagged" true (contains "faultmc-sva-v1")

let test_pruner_self_check () =
  let e = Experiments.engine_for (Lazy.force ctx) Programs.illegal_write in
  let p = Pruner.create e in
  let claimed, violations = Pruner.self_check ~points:30 p in
  Alcotest.(check bool) "some points claimed masked" true (claimed > 0);
  Alcotest.(check int) "every claim confirmed by the engine" 0 (List.length violations)

let check_pruned_report_identical prog ~expect_pruning =
  let e = Experiments.engine_for (Lazy.force ctx) prog in
  let prep = prepare e in
  let plain = Ssf.estimate e prep ~samples:500 ~seed:11 in
  let e2 = Experiments.engine_for (Lazy.force ctx) prog in
  let pruner = Pruner.create e2 in
  let pruned = Ssf.estimate ~prune:(Pruner.check pruner) e2 prep ~samples:500 ~seed:11 in
  Alcotest.(check string) "pruned report byte-identical"
    (Export.report_json plain) (Export.report_json pruned);
  let s = Pruner.stats pruner in
  Alcotest.(check int) "every sample checked" 500 s.Pruner.checked;
  if expect_pruning then
    Alcotest.(check bool) "nonzero prune ratio" true (s.Pruner.pruned > 0)

let test_pruned_byte_identical_write () =
  check_pruned_report_identical Programs.illegal_write ~expect_pruning:true

let test_pruned_byte_identical_read () =
  check_pruned_report_identical Programs.illegal_read ~expect_pruning:false

(* ------------------------------------------------------------------ *)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sva"
    [
      ("absint", q absint_props);
      ("window", [ Alcotest.test_case "chain distances" `Quick test_window_distances ]);
      ( "certificates",
        [
          Alcotest.test_case "artifact fields and schema" `Quick test_certificate_artifact;
          Alcotest.test_case "pruner self-check" `Slow test_pruner_self_check;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "illegal_write report byte-identical" `Slow
            test_pruned_byte_identical_write;
          Alcotest.test_case "illegal_read report byte-identical" `Slow
            test_pruned_byte_identical_read;
        ] );
    ]
